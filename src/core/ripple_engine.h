// RippleEngine: the paper's incremental, strictly look-forward streaming
// GNN inference engine (§4.3).
//
// State beyond the baselines' (graph + H^0..H^L):
//  * aggregate caches  S^l[v] = Σ_{u∈N_in(v)} α(u,v)·h^{l-1}_u  (raw sums —
//    the mean aggregator divides by the live in-degree at apply time), and
//  * one mailbox per hop.
//
// update(batch) applies topology/feature changes at hop 0 and seeds
// mailboxes; propagate() walks hops 1..L. Per affected vertex the
// aggregation work is O(k') in the number of *changed* in-neighbors instead
// of the baselines' O(k) pull — the core claim of the paper (§4.3.3).
//
// Shard-parallel propagation core
// -------------------------------
// Each hop's mailbox is sharded by vertex hash (core/mailbox.h), and each
// hop runs as two phases executed over the selected scheduler
// (RippleOptions::scheduler): the work-stealing runtime submits one task
// per shard / sender block, LPT-seeded by pending-slot counts and stolen on
// imbalance (common/scheduler.h); the static scheduler splits the same
// index ranges into contiguous ThreadPool::parallel_for chunks.
//
//  * Apply phase — shard-parallel. Each worker drains whole shards: it
//    folds the shard's accumulated Δagg into the aggregate cache, gathers
//    the shard's affected rows into a dense block, re-evaluates the layer
//    Update function with ONE blocked GEMM (GnnLayer::update_matrix)
//    instead of per-vertex GEMVs, and scatters the results back into H^l.
//    Every vertex lives in exactly one shard, so workers write disjoint
//    rows and no synchronization is needed.
//
//  * Compute phase — two lock-free stages. (1) Bucket build: the canonical
//    sender list (the affected set in ascending id order) is split into
//    fixed contiguous blocks; workers scan each block's out-edges ONCE and
//    bucket (sender rank, target, α) tuples per (block, target shard).
//    (2) Owner-computes drain: the worker that owns target shard s is the
//    only writer of s; it drains s's buckets in block order — and within a
//    block in the ascending-rank order the build stage appended — so every
//    cell accumulates its Δh messages in global ascending-sender order.
//    No locks, no atomics, and the edge list is traversed exactly once
//    regardless of shard or thread count.
//
// Determinism guarantee: float accumulation order is fixed — each mailbox
// cell has a single writer and receives its messages in ascending
// sender-id order (contiguous blocks drained in order reconstruct the
// global sort, independent of how senders block or targets hash to
// shards). Embeddings are therefore bit-identical for ANY scheduler mode,
// ANY shard count, and ANY thread count, including the sequential
// 1-shard/1-thread configuration — the scheduler only decides WHICH worker
// runs a task, never what it computes or in what within-task order
// (property-tested in tests/core/test_ripple_properties.cpp).
// Per-phase timings, shard and thread counts are reported through
// BatchResult.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/scheduler.h"
#include "core/hop_kernel.h"
#include "core/mailbox.h"
#include "infer/engine.h"

namespace ripple {

struct RippleOptions {
  // Ablation knob (off by default, faithful to the paper: "Ripple does not
  // perform pruning or selective updates"). When on, a vertex whose new
  // embedding equals its old one (within tolerance) sends no messages.
  bool prune_unchanged = false;
  float prune_tolerance = 0.0f;

  // Mailbox shards per hop. 0 = auto: 1 without a thread pool, else
  // max(8, pool size) so the apply/compute phases have enough independent
  // work units to balance. Embeddings do not depend on this value (see the
  // determinism note above) — it only shapes parallel granularity.
  std::size_t num_shards = 0;

  // Propagation-phase scheduler. kSteal (default) submits one task per
  // shard / sender block to the work-stealing runtime, LPT-seeded by
  // pending-slot counts, so a power-law hot shard no longer gates the
  // phase; kStatic keeps the contiguous parallel_for chunking. Embeddings
  // are bit-identical either way (see the determinism note above).
  SchedulerMode scheduler = SchedulerMode::kSteal;
};

class RippleEngine : public InferenceEngine {
 public:
  RippleEngine(const GnnModel& model, DynamicGraph snapshot,
               const Matrix& features, ThreadPool* pool = nullptr,
               RippleOptions options = {});

  const char* name() const override { return "Ripple"; }
  BatchResult apply_batch(UpdateBatch batch) override;

  const EmbeddingStore& embeddings() const override { return store_; }
  const DynamicGraph& graph() const override { return graph_; }
  const GnnModel& model() const override { return model_; }
  std::size_t memory_bytes() const override;

  // The two primary operators (§4.3.2), exposed so the distributed runtime
  // and white-box tests can drive hops individually.
  void update(UpdateBatch batch);  // hop-0 apply + hop-1..L mailbox seeding
  BatchResult propagate();         // hops 1..L apply+compute phases

  // Resolved shard count (after the num_shards=0 auto rule).
  std::size_t num_shards() const { return num_shards_; }

  // Scheduler the propagation phases run on. kSteal silently degrades to
  // the sequential path when no pool was given (nothing to steal from).
  SchedulerMode scheduler_mode() const {
    return stealer_ != nullptr ? SchedulerMode::kSteal
                               : SchedulerMode::kStatic;
  }

  // Test hook: layer-l aggregate cache (l in [1, L]).
  const Matrix& aggregate_cache(std::size_t l) const {
    return agg_cache_[l - 1];
  }
  // Test hook: hop-l mailbox (l in [1, L]).
  const Mailbox& mailbox(std::size_t l) const { return mailboxes_[l - 1]; }
  Mailbox& mutable_mailbox(std::size_t l) { return mailboxes_[l - 1]; }

  // Number of incremental numerical ops performed since construction
  // (2·k' model of §4.3.3); used by the ablation/benefit analysis bench.
  std::uint64_t incremental_ops() const { return incremental_ops_; }

 private:
  void bootstrap(const Matrix& features);
  float edge_alpha(EdgeWeight weight) const;
  void seed_edge_messages(VertexId u, VertexId v, EdgeWeight weight,
                          bool is_add);
  void apply_feature_update(const GraphUpdate& update);
  // Apply-phase task: drain shard s of hop l; returns its incremental-op
  // count. `order` is the canonical (sorted) affected set; delta rows are
  // written at each vertex's rank in it.
  std::uint64_t apply_one_shard(std::size_t l, std::size_t s,
                                const std::vector<VertexId>& order);
  // Compute-phase stage-1 task of hop l: scan sender block b (a contiguous
  // rank range of `order`) and bucket its messages per (block, target
  // shard); returns the block's message count.
  std::uint64_t bucket_sender_block(std::size_t l, std::size_t b,
                                    const std::vector<VertexId>& order);
  // Compute-phase stage-2 task of hop l: drain target shard t of the
  // hop-(l+1) mailbox in block order.
  void drain_target_shard(std::size_t l, std::size_t t);
  // One parallel region over [0, n) task indices on the selected scheduler
  // (stealing with LPT cost hints, static contiguous chunks, or inline).
  void run_phase(std::size_t n, std::span<const std::size_t> costs,
                 const std::function<void(std::size_t)>& task);

  GnnModel model_;
  DynamicGraph graph_;
  EmbeddingStore store_;
  std::vector<Matrix> agg_cache_;   // [l-1] -> n x layer_in_dim(l-1) sums
  std::vector<Mailbox> mailboxes_;  // [l-1] -> hop-l mailbox
  ThreadPool* pool_;
  // Work-stealing runtime for the propagation phases (null = static
  // chunking / sequential). Owns the per-participant deques; reset per
  // batch so BatchResult reports per-batch steal/imbalance stats.
  std::unique_ptr<WorkStealingScheduler> stealer_;
  RippleOptions options_;
  std::size_t num_shards_ = 1;
  std::uint64_t incremental_ops_ = 0;
  // Per-shard gather/compute blocks reused across hops (each shard's apply
  // task owns exactly one scratch set, so parallel workers never share).
  std::vector<HopShardScratch> scratch_;  // one per shard
  Matrix delta_block_;                    // rank-major Δh rows for one hop
  std::vector<std::uint8_t> send_flags_;  // rank-major (pruning ablation)

  // Compute-phase message buckets, flat-indexed [block * num_shards_ +
  // target_shard]; cleared (capacity retained) every hop.
  struct ScatterMsg {
    std::uint32_t rank;  // sender's rank in the canonical order
    VertexId target;
    float alpha;
  };
  std::vector<std::vector<ScatterMsg>> msg_buckets_;
  std::vector<std::vector<VertexId>> self_buckets_;
};

}  // namespace ripple
