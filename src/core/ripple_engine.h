// RippleEngine: the paper's incremental, strictly look-forward streaming
// GNN inference engine (§4.3).
//
// State beyond the baselines' (graph + H^0..H^L):
//  * aggregate caches  S^l[v] = Σ_{u∈N_in(v)} α(u,v)·h^{l-1}_u  (raw sums —
//    the mean aggregator divides by the live in-degree at apply time), and
//  * one mailbox per hop.
//
// update(batch) applies topology/feature changes at hop 0 and seeds
// mailboxes; propagate() walks hops 1..L. Per affected vertex the
// aggregation work is O(k') in the number of *changed* in-neighbors instead
// of the baselines' O(k) pull — the core claim of the paper (§4.3.3).
//
// Shard-parallel propagation core
// -------------------------------
// Each hop's mailbox is sharded by vertex hash (core/mailbox.h), and each
// hop runs as two phases executed over the ThreadPool:
//
//  * Apply phase — shard-parallel. Each worker drains whole shards: it
//    folds the shard's accumulated Δagg into the aggregate cache, gathers
//    the shard's affected rows into a dense block, re-evaluates the layer
//    Update function with ONE blocked GEMM (GnnLayer::update_matrix)
//    instead of per-vertex GEMVs, and scatters the results back into H^l.
//    Every vertex lives in exactly one shard, so workers write disjoint
//    rows and no synchronization is needed.
//
//  * Compute phase — two lock-free stages. (1) Bucket build: the canonical
//    sender list (the affected set in ascending id order) is split into
//    fixed contiguous blocks; workers scan each block's out-edges ONCE and
//    bucket (sender rank, target, α) tuples per (block, target shard).
//    (2) Owner-computes drain: the worker that owns target shard s is the
//    only writer of s; it drains s's buckets in block order — and within a
//    block in the ascending-rank order the build stage appended — so every
//    cell accumulates its Δh messages in global ascending-sender order.
//    No locks, no atomics, and the edge list is traversed exactly once
//    regardless of shard or thread count.
//
// Determinism guarantee: float accumulation order is fixed — each mailbox
// cell has a single writer and receives its messages in ascending
// sender-id order (contiguous blocks drained in order reconstruct the
// global sort, independent of how senders block or targets hash to
// shards). Embeddings are therefore bit-identical for ANY shard count and
// ANY thread count, including the sequential 1-shard/1-thread
// configuration (property-tested in tests/core/test_ripple_properties.cpp).
// Per-phase timings, shard and thread counts are reported through
// BatchResult.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hop_kernel.h"
#include "core/mailbox.h"
#include "infer/engine.h"

namespace ripple {

struct RippleOptions {
  // Ablation knob (off by default, faithful to the paper: "Ripple does not
  // perform pruning or selective updates"). When on, a vertex whose new
  // embedding equals its old one (within tolerance) sends no messages.
  bool prune_unchanged = false;
  float prune_tolerance = 0.0f;

  // Mailbox shards per hop. 0 = auto: 1 without a thread pool, else
  // max(8, pool size) so the apply/compute phases have enough independent
  // work units to balance. Embeddings do not depend on this value (see the
  // determinism note above) — it only shapes parallel granularity.
  std::size_t num_shards = 0;
};

class RippleEngine : public InferenceEngine {
 public:
  RippleEngine(const GnnModel& model, DynamicGraph snapshot,
               const Matrix& features, ThreadPool* pool = nullptr,
               RippleOptions options = {});

  const char* name() const override { return "Ripple"; }
  BatchResult apply_batch(UpdateBatch batch) override;

  const EmbeddingStore& embeddings() const override { return store_; }
  const DynamicGraph& graph() const override { return graph_; }
  const GnnModel& model() const override { return model_; }
  std::size_t memory_bytes() const override;

  // The two primary operators (§4.3.2), exposed so the distributed runtime
  // and white-box tests can drive hops individually.
  void update(UpdateBatch batch);  // hop-0 apply + hop-1..L mailbox seeding
  BatchResult propagate();         // hops 1..L apply+compute phases

  // Resolved shard count (after the num_shards=0 auto rule).
  std::size_t num_shards() const { return num_shards_; }

  // Test hook: layer-l aggregate cache (l in [1, L]).
  const Matrix& aggregate_cache(std::size_t l) const {
    return agg_cache_[l - 1];
  }
  // Test hook: hop-l mailbox (l in [1, L]).
  const Mailbox& mailbox(std::size_t l) const { return mailboxes_[l - 1]; }
  Mailbox& mutable_mailbox(std::size_t l) { return mailboxes_[l - 1]; }

  // Number of incremental numerical ops performed since construction
  // (2·k' model of §4.3.3); used by the ablation/benefit analysis bench.
  std::uint64_t incremental_ops() const { return incremental_ops_; }

 private:
  void bootstrap(const Matrix& features);
  float edge_alpha(EdgeWeight weight) const;
  void seed_edge_messages(VertexId u, VertexId v, EdgeWeight weight,
                          bool is_add);
  void apply_feature_update(const GraphUpdate& update);
  // Apply phase of hop l for shards [shard_lo, shard_hi); returns this
  // range's incremental-op count. `order` is the canonical (sorted)
  // affected set; delta rows are written at each vertex's rank in it.
  std::uint64_t apply_shard_range(std::size_t l, std::size_t shard_lo,
                                  std::size_t shard_hi,
                                  const std::vector<VertexId>& order);
  // Compute-phase stage 1 of hop l: scan sender blocks [block_lo, block_hi)
  // (contiguous rank ranges of `order`) and bucket their messages per
  // (block, target shard); returns the range's message count.
  std::uint64_t bucket_sender_blocks(std::size_t l, std::size_t block_lo,
                                     std::size_t block_hi,
                                     const std::vector<VertexId>& order);
  // Compute-phase stage 2 of hop l: drain the buckets of target shards
  // [shard_lo, shard_hi) of the hop-(l+1) mailbox in block order.
  void drain_target_shards(std::size_t l, std::size_t shard_lo,
                           std::size_t shard_hi);

  GnnModel model_;
  DynamicGraph graph_;
  EmbeddingStore store_;
  std::vector<Matrix> agg_cache_;   // [l-1] -> n x layer_in_dim(l-1) sums
  std::vector<Mailbox> mailboxes_;  // [l-1] -> hop-l mailbox
  ThreadPool* pool_;
  RippleOptions options_;
  std::size_t num_shards_ = 1;
  std::uint64_t incremental_ops_ = 0;
  // Per-shard gather/compute blocks reused across hops (each shard's apply
  // task owns exactly one scratch set, so parallel workers never share).
  std::vector<HopShardScratch> scratch_;  // one per shard
  Matrix delta_block_;                    // rank-major Δh rows for one hop
  std::vector<std::uint8_t> send_flags_;  // rank-major (pruning ablation)

  // Compute-phase message buckets, flat-indexed [block * num_shards_ +
  // target_shard]; cleared (capacity retained) every hop.
  struct ScatterMsg {
    std::uint32_t rank;  // sender's rank in the canonical order
    VertexId target;
    float alpha;
  };
  std::vector<std::vector<ScatterMsg>> msg_buckets_;
  std::vector<std::vector<VertexId>> self_buckets_;
};

}  // namespace ripple
