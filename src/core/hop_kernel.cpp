#include "core/hop_kernel.h"

namespace ripple {

void bootstrap_with_caches(const GnnModel& model, const DynamicGraph& graph,
                           EmbeddingStore& store,
                           std::vector<Matrix>& agg_cache, ThreadPool* pool) {
  const AggregatorKind cache_kind =
      model.config().aggregator == AggregatorKind::weighted_sum
          ? AggregatorKind::weighted_sum
          : AggregatorKind::sum;
  const bool is_mean = model.config().aggregator == AggregatorKind::mean;
  agg_cache.resize(model.num_layers());
  Matrix x_actual;
  for (std::size_t l = 0; l < model.num_layers(); ++l) {
    aggregate_all(cache_kind, graph, store.layer(l), agg_cache[l]);
    const Matrix* x = &agg_cache[l];
    if (is_mean) {
      x_actual = agg_cache[l];
      for (VertexId v = 0; v < graph.num_vertices(); ++v) {
        const auto deg = graph.in_degree(v);
        if (deg > 0) {
          vec_scale(x_actual.row(v), 1.0f / static_cast<float>(deg));
        }
      }
      x = &x_actual;
    }
    model.layer(l).update_matrix(store.layer(l), *x, store.layer(l + 1),
                                 pool);
    model.apply_activation_matrix(l, store.layer(l + 1));
  }
}

}  // namespace ripple
