#include "core/mailbox.h"

#include "common/check.h"

namespace ripple {

Mailbox::Entry& Mailbox::entry(VertexId v) {
  Entry& e = entries_[v];
  if (e.delta_agg.empty()) e.delta_agg.assign(dim_, 0.0f);
  return e;
}

void Mailbox::accumulate(VertexId v, float alpha,
                         std::span<const float> h_new,
                         std::span<const float> h_old) {
  Entry& e = entry(v);
  e.touched_agg = true;
  if (!h_new.empty()) {
    RIPPLE_CHECK(h_new.size() == dim_);
    vec_axpy(e.delta_agg, alpha, h_new);
  }
  if (!h_old.empty()) {
    RIPPLE_CHECK(h_old.size() == dim_);
    vec_axpy(e.delta_agg, -alpha, h_old);
  }
}

void Mailbox::mark_self_changed(VertexId v) {
  entry(v).self_changed = true;
}

std::size_t Mailbox::bytes() const {
  std::size_t total = entries_.size() * (sizeof(VertexId) + sizeof(Entry));
  for (const auto& [v, e] : entries_) {
    total += e.delta_agg.capacity() * sizeof(float);
  }
  return total;
}

}  // namespace ripple
