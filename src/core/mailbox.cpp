#include "core/mailbox.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

Mailbox::Mailbox(std::size_t dim, std::size_t num_shards) : dim_(dim) {
  RIPPLE_CHECK_MSG(num_shards >= 1, "mailbox needs at least one shard");
  shards_.resize(num_shards);
}

std::vector<std::uint32_t> Mailbox::Shard::sorted_slots() const {
  std::vector<std::uint32_t> slots(vertices.size());
  for (std::uint32_t i = 0; i < slots.size(); ++i) slots[i] = i;
  std::sort(slots.begin(), slots.end(),
            [this](std::uint32_t a, std::uint32_t b) {
              return vertices[a] < vertices[b];
            });
  return slots;
}

std::size_t Mailbox::size() const {
  std::size_t total = 0;
  for (const Shard& shard : shards_) total += shard.size();
  return total;
}

bool Mailbox::empty() const {
  for (const Shard& shard : shards_) {
    if (!shard.vertices.empty()) return false;
  }
  return true;
}

std::uint32_t Mailbox::slot_of(Shard& shard, VertexId v) {
  const auto [it, inserted] =
      shard.index.try_emplace(v, static_cast<std::uint32_t>(shard.size()));
  if (inserted) {
    shard.vertices.push_back(v);
    shard.deltas.resize(shard.deltas.size() + dim_, 0.0f);
    shard.touched.push_back(0);
    shard.self.push_back(0);
  }
  return it->second;
}

void Mailbox::accumulate(VertexId v, float alpha,
                         std::span<const float> h_new,
                         std::span<const float> h_old) {
  Shard& shard = mutable_shard(v);
  const std::uint32_t slot = slot_of(shard, v);
  shard.touched[slot] = 1;
  const std::span<float> delta(shard.deltas.data() + slot * dim_, dim_);
  if (!h_new.empty()) {
    RIPPLE_CHECK(h_new.size() == dim_);
    vec_axpy(delta, alpha, h_new);
  }
  if (!h_old.empty()) {
    RIPPLE_CHECK(h_old.size() == dim_);
    vec_axpy(delta, -alpha, h_old);
  }
}

void Mailbox::mark_self_changed(VertexId v) {
  Shard& shard = mutable_shard(v);
  shard.self[slot_of(shard, v)] = 1;
}

void Mailbox::adopt(VertexId v, std::span<const float> delta, bool touched,
                    bool self) {
  RIPPLE_CHECK(delta.size() == dim_);
  Shard& shard = mutable_shard(v);
  const std::uint32_t slot = slot_of(shard, v);
  vec_copy(delta, std::span<float>(shard.deltas.data() + slot * dim_, dim_));
  if (touched) shard.touched[slot] = 1;
  if (self) shard.self[slot] = 1;
}

bool Mailbox::contains(VertexId v) const {
  const Shard& shard = shards_[shard_of(v)];
  return shard.index.find(v) != shard.index.end();
}

Mailbox::EntryView Mailbox::entry(VertexId v) {
  Shard& shard = mutable_shard(v);
  const std::uint32_t slot = slot_of(shard, v);
  return EntryView{
      .delta_agg = std::span<float>(shard.deltas.data() + slot * dim_, dim_),
      .touched_agg = shard.touched[slot] != 0,
      .self_changed = shard.self[slot] != 0,
  };
}

std::vector<std::size_t> Mailbox::shard_sizes() const {
  std::vector<std::size_t> sizes(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    sizes[s] = shards_[s].size();
  }
  return sizes;
}

std::vector<VertexId> Mailbox::sorted_vertices() const {
  std::vector<VertexId> order;
  order.reserve(size());
  for (const Shard& shard : shards_) {
    order.insert(order.end(), shard.vertices.begin(), shard.vertices.end());
  }
  std::sort(order.begin(), order.end());
  return order;
}

void Mailbox::clear() {
  for (Shard& shard : shards_) {
    shard.index.clear();
    shard.vertices.clear();
    shard.deltas.clear();
    shard.touched.clear();
    shard.self.clear();
  }
}

std::size_t Mailbox::bytes() const {
  std::size_t total = sizeof(Shard) * shards_.size();
  for (const Shard& shard : shards_) {
    // Dense slot-major buffers (capacity, not size: the memory is resident).
    total += shard.vertices.capacity() * sizeof(VertexId);
    total += shard.deltas.capacity() * sizeof(float);
    total += shard.touched.capacity() + shard.self.capacity();
    // unordered_map overhead: one heap node per element (key/value pair plus
    // the next pointer and cached hash libstdc++ stores per node) and the
    // bucket pointer array.
    constexpr std::size_t kNodeBytes =
        sizeof(std::pair<const VertexId, std::uint32_t>) +
        2 * sizeof(void*);
    total += shard.index.size() * kNodeBytes;
    total += shard.index.bucket_count() * sizeof(void*);
  }
  return total;
}

}  // namespace ripple
