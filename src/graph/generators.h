// Synthetic graph generators used to build the dataset analogues (Table 3).
//
// All generators produce *directed* graphs with no parallel edges and are
// fully deterministic given the Rng seed. Degree structure matters more
// than any other property for Ripple's experiments, because the affected
// neighborhood growth rate (Fig. 2b) is governed by the in-degree
// distribution.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/dynamic_graph.h"

namespace ripple {

class Rng;

// G(n, m): m distinct directed edges chosen uniformly at random.
DynamicGraph erdos_renyi(std::size_t num_vertices, std::size_t num_edges,
                         Rng& rng);

// Preferential attachment: vertices arrive one by one and connect
// `edges_per_vertex` out-edges to earlier vertices with probability
// proportional to (in_degree + 1). Produces a heavy-tailed in-degree
// distribution (Reddit/Products analogue).
DynamicGraph barabasi_albert(std::size_t num_vertices,
                             std::size_t edges_per_vertex, Rng& rng);

// R-MAT (Chakrabarti et al.): recursive quadrant sampling with probabilities
// (a, b, c, d); a + b + c + d must be ≈ 1. num_vertices is rounded up to a
// power of two internally; the graph is truncated back to num_vertices.
DynamicGraph rmat(std::size_t num_vertices, std::size_t num_edges, double a,
                  double b, double c, double d, Rng& rng);

// Stochastic block model with `num_blocks` equal communities. Every ordered
// pair within a community is an edge with probability p_in, across
// communities with probability p_out. Labels (community ids) are written to
// *labels. Used for trainable classification tasks (Fig. 2a).
DynamicGraph stochastic_block_model(std::size_t num_vertices,
                                    std::size_t num_blocks, double p_in,
                                    double p_out, Rng& rng,
                                    std::vector<std::uint32_t>* labels);

}  // namespace ripple
