// Dataset analogues of the paper's Table 3.
//
// The paper evaluates on OGB datasets (ogbn-arxiv, Reddit, ogbn-products,
// ogbn-papers100M) which are not redistributable here; we synthesize graphs
// that preserve the properties the experiments depend on — average
// in-degree, degree skew, feature dimension, class count — at a size that
// fits this machine. The full-scale parameters are retained in the spec so
// `--scale=1` regenerates paper-sized graphs on larger hardware.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "graph/dynamic_graph.h"
#include "tensor/matrix.h"

namespace ripple {

enum class GeneratorKind { erdos_renyi, barabasi_albert, rmat, sbm };

struct DatasetSpec {
  std::string name;           // registry key, e.g. "arxiv-s"
  std::string paper_name;     // e.g. "ogbn-arxiv"
  GeneratorKind generator = GeneratorKind::erdos_renyi;

  // Full-scale (paper) parameters.
  std::size_t paper_vertices = 0;
  std::size_t paper_edges = 0;

  // Default scaled-down parameters used by tests/benches on this machine.
  std::size_t scaled_vertices = 0;
  std::size_t scaled_edges = 0;

  std::size_t feat_dim = 0;
  std::size_t num_classes = 0;
  double paper_avg_in_degree = 0;
};

// A materialized dataset: initial graph + vertex features + labels.
struct Dataset {
  DatasetSpec spec;
  DynamicGraph graph;
  Matrix features;                     // n x feat_dim
  std::vector<std::uint32_t> labels;   // ground truth (only meaningful for SBM)
};

// Registry --------------------------------------------------------------

// Known dataset analogues: "arxiv-s", "reddit-s", "products-s", "papers-s".
const std::vector<DatasetSpec>& dataset_registry();

// Lookup by name; throws on unknown name.
const DatasetSpec& find_dataset_spec(const std::string& name);

// Materializes the dataset at `scale` in (0, 1]: vertex/edge counts are the
// scaled defaults multiplied by scale (scale=1 keeps the machine-sized
// defaults; pass spec overrides for paper-sized runs). Deterministic in
// `seed`. Features are uniform in [-0.5, 0.5).
Dataset build_dataset(const std::string& name, double scale = 1.0,
                      std::uint64_t seed = 42);

// SBM-based trainable dataset (labels = communities, features = noisy class
// prototypes) for accuracy experiments such as Fig. 2a.
Dataset build_sbm_dataset(std::size_t num_vertices, std::size_t num_classes,
                          std::size_t feat_dim, double avg_in_degree,
                          double in_out_ratio = 8.0, double feature_noise = 1.0,
                          std::uint64_t seed = 42);

}  // namespace ripple
