#include "graph/csr.h"

#include "graph/dynamic_graph.h"

namespace ripple {

Csr Csr::from_graph(const DynamicGraph& graph) {
  Csr csr;
  const std::size_t n = graph.num_vertices();
  csr.in_offsets_.assign(n + 1, 0);
  csr.out_offsets_.assign(n + 1, 0);
  for (VertexId v = 0; v < n; ++v) {
    csr.in_offsets_[v + 1] = csr.in_offsets_[v] + graph.in_degree(v);
    csr.out_offsets_[v + 1] = csr.out_offsets_[v] + graph.out_degree(v);
  }
  csr.in_neighbors_.reserve(csr.in_offsets_[n]);
  csr.out_neighbors_.reserve(csr.out_offsets_[n]);
  for (VertexId v = 0; v < n; ++v) {
    const auto in = graph.in_neighbors(v);
    csr.in_neighbors_.insert(csr.in_neighbors_.end(), in.begin(), in.end());
    const auto out = graph.out_neighbors(v);
    csr.out_neighbors_.insert(csr.out_neighbors_.end(), out.begin(),
                              out.end());
  }
  return csr;
}

}  // namespace ripple
