#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/log.h"
#include "common/rng.h"
#include "graph/generators.h"

namespace ripple {

const std::vector<DatasetSpec>& dataset_registry() {
  static const std::vector<DatasetSpec> registry = {
      {
          .name = "arxiv-s",
          .paper_name = "ogbn-arxiv",
          .generator = GeneratorKind::erdos_renyi,
          .paper_vertices = 169'343,
          .paper_edges = 1'166'243,
          .scaled_vertices = 17'000,
          .scaled_edges = 118'000,  // avg in-degree ≈ 6.9, as in the paper
          .feat_dim = 128,
          .num_classes = 40,
          .paper_avg_in_degree = 6.9,
      },
      {
          .name = "reddit-s",
          .paper_name = "Reddit",
          .generator = GeneratorKind::barabasi_albert,
          .paper_vertices = 232'965,
          .paper_edges = 114'915'892,
          // Dense analogue: high average in-degree with a heavy tail.
          // Degree is capped at ~96 (vs 492) to keep bench runtimes sane on
          // this machine; still ≈ 4x denser than products-s so the paper's
          // ordering (Reddit slowest) is preserved.
          .scaled_vertices = 12'000,
          .scaled_edges = 1'150'000,
          .feat_dim = 602,
          .num_classes = 41,
          .paper_avg_in_degree = 492.0,
      },
      {
          .name = "products-s",
          .paper_name = "ogbn-products",
          .generator = GeneratorKind::rmat,
          .paper_vertices = 2'449'029,
          .paper_edges = 123'718'280,
          .scaled_vertices = 49'000,
          .scaled_edges = 1'230'000,  // avg in-degree ≈ 25 (paper: 50.5)
          .feat_dim = 100,
          .num_classes = 47,
          .paper_avg_in_degree = 50.5,
      },
      {
          .name = "papers-s",
          .paper_name = "ogbn-papers100M",
          .generator = GeneratorKind::rmat,
          .paper_vertices = 111'059'956,
          .paper_edges = 1'615'685'872,
          .scaled_vertices = 180'000,
          .scaled_edges = 2'610'000,  // avg in-degree ≈ 14.5, as in the paper
          .feat_dim = 128,
          .num_classes = 172,
          .paper_avg_in_degree = 14.5,
      },
  };
  return registry;
}

const DatasetSpec& find_dataset_spec(const std::string& name) {
  for (const auto& spec : dataset_registry()) {
    if (spec.name == name) return spec;
  }
  std::string known;
  for (const auto& spec : dataset_registry()) {
    known += spec.name + " ";
  }
  RIPPLE_CHECK_MSG(false, "unknown dataset '" << name << "'; known: " << known);
  // Unreachable; silences missing-return warnings.
  throw check_error("unreachable");
}

namespace {

Matrix uniform_features(std::size_t n, std::size_t dim, Rng& rng) {
  Matrix features(n, dim);
  for (std::size_t r = 0; r < n; ++r) {
    for (auto& v : features.row(r)) v = rng.next_float(-0.5f, 0.5f);
  }
  return features;
}

}  // namespace

Dataset build_dataset(const std::string& name, double scale,
                      std::uint64_t seed) {
  RIPPLE_CHECK_MSG(scale > 0 && scale <= 1.0,
                   "scale must be in (0, 1], got " << scale);
  const DatasetSpec& spec = find_dataset_spec(name);
  const auto n = std::max<std::size_t>(
      64, static_cast<std::size_t>(std::llround(
              static_cast<double>(spec.scaled_vertices) * scale)));
  const auto m = std::max<std::size_t>(
      4 * n, static_cast<std::size_t>(std::llround(
                 static_cast<double>(spec.scaled_edges) * scale)));

  Rng rng(seed ^ std::hash<std::string>{}(name));
  Dataset ds;
  ds.spec = spec;
  LOG_INFO("building dataset " << name << " n=" << n << " m=" << m);
  switch (spec.generator) {
    case GeneratorKind::erdos_renyi:
      ds.graph = erdos_renyi(n, m, rng);
      break;
    case GeneratorKind::barabasi_albert: {
      const std::size_t per_vertex = std::max<std::size_t>(1, m / n);
      ds.graph = barabasi_albert(n, per_vertex, rng);
      break;
    }
    case GeneratorKind::rmat:
      ds.graph = rmat(n, m, 0.45, 0.22, 0.22, 0.11, rng);
      break;
    case GeneratorKind::sbm: {
      const double p_in = static_cast<double>(m) / (static_cast<double>(n) *
                                                    static_cast<double>(n));
      ds.graph = stochastic_block_model(n, spec.num_classes, p_in * 4,
                                        p_in / 2, rng, &ds.labels);
      break;
    }
  }
  ds.features = uniform_features(ds.graph.num_vertices(), spec.feat_dim, rng);
  if (ds.labels.empty()) {
    // Uncorrelated labels; accuracy experiments should use SBM datasets.
    ds.labels.resize(ds.graph.num_vertices());
    for (auto& label : ds.labels) {
      label = static_cast<std::uint32_t>(rng.next_below(spec.num_classes));
    }
  }
  return ds;
}

Dataset build_sbm_dataset(std::size_t num_vertices, std::size_t num_classes,
                          std::size_t feat_dim, double avg_in_degree,
                          double in_out_ratio, double feature_noise,
                          std::uint64_t seed) {
  RIPPLE_CHECK(num_classes >= 2);
  RIPPLE_CHECK(avg_in_degree > 0);
  Rng rng(seed);
  // Solve p_in, p_out so the expected in-degree matches avg_in_degree with
  // the requested assortativity (p_in = ratio * p_out). Expected in-degree
  // ≈ p_in * n/k + p_out * n(k-1)/k.
  const double n = static_cast<double>(num_vertices);
  const double k = static_cast<double>(num_classes);
  const double p_out =
      avg_in_degree / (n / k * in_out_ratio + n * (k - 1) / k);
  const double p_in = in_out_ratio * p_out;

  Dataset ds;
  ds.spec = DatasetSpec{
      .name = "sbm",
      .paper_name = "synthetic-sbm",
      .generator = GeneratorKind::sbm,
      .paper_vertices = num_vertices,
      .paper_edges = 0,
      .scaled_vertices = num_vertices,
      .scaled_edges = 0,
      .feat_dim = feat_dim,
      .num_classes = num_classes,
      .paper_avg_in_degree = avg_in_degree,
  };
  ds.graph = stochastic_block_model(num_vertices, num_classes, p_in, p_out,
                                    rng, &ds.labels);
  // Class prototype features + Gaussian noise: informative but not trivially
  // separable, so neighborhood aggregation genuinely helps.
  Matrix prototypes = Matrix::random_uniform(num_classes, feat_dim, rng,
                                             -1.0f, 1.0f);
  ds.features.resize(num_vertices, feat_dim);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    auto row = ds.features.row(v);
    const auto proto = prototypes.row(ds.labels[v]);
    for (std::size_t j = 0; j < feat_dim; ++j) {
      row[j] = proto[j] + static_cast<float>(rng.next_gaussian() *
                                             feature_noise);
    }
  }
  return ds;
}

}  // namespace ripple
