// Shared graph typedefs. Vertex ids are dense 32-bit indices; the largest
// dataset analogue (papers-s) stays well below 2^32 vertices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

namespace ripple {

using VertexId = std::uint32_t;
using EdgeWeight = float;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// Fibonacci multiplicative spread of a dense id across n buckets (n >= 1).
// Shared by the mailbox shard map and the partition fallback for vertices
// that join the stream after partitioning, so every component — and every
// replica of a partition — routes the same id identically.
inline std::size_t fib_spread(VertexId v, std::size_t n) {
  const std::uint64_t h =
      static_cast<std::uint64_t>(v) * 0x9E3779B97F4A7C15ull;
  return static_cast<std::size_t>(h >> 32) % n;
}

// A directed neighbor entry: target vertex plus the edge weight (1.0 for
// unweighted graphs; the GC-W workload uses per-edge weights).
struct Neighbor {
  VertexId vertex = kInvalidVertex;
  EdgeWeight weight = 1.0f;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace ripple
