// Shared graph typedefs. Vertex ids are dense 32-bit indices; the largest
// dataset analogue (papers-s) stays well below 2^32 vertices.
#pragma once

#include <cstdint>
#include <limits>

namespace ripple {

using VertexId = std::uint32_t;
using EdgeWeight = float;

inline constexpr VertexId kInvalidVertex =
    std::numeric_limits<VertexId>::max();

// A directed neighbor entry: target vertex plus the edge weight (1.0 for
// unweighted graphs; the GC-W workload uses per-edge weights).
struct Neighbor {
  VertexId vertex = kInvalidVertex;
  EdgeWeight weight = 1.0f;

  friend bool operator==(const Neighbor&, const Neighbor&) = default;
};

}  // namespace ripple
