// Binary serialization for graphs and feature matrices so expensive
// generated datasets can be cached on disk between bench runs.
//
// Format (little-endian, host-width-independent):
//   graph:   magic "RPLG" | u64 n | u64 m | m x (u32 src, u32 dst, f32 w)
//   matrix:  magic "RPLM" | u64 rows | u64 cols | rows*cols x f32
#pragma once

#include <string>

#include "graph/dynamic_graph.h"
#include "tensor/matrix.h"

namespace ripple {

void save_graph(const DynamicGraph& graph, const std::string& path);
DynamicGraph load_graph(const std::string& path);

void save_matrix(const Matrix& matrix, const std::string& path);
Matrix load_matrix(const std::string& path);

}  // namespace ripple
