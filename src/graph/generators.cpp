#include "graph/generators.h"

#include <cmath>

#include "common/check.h"
#include "common/rng.h"

namespace ripple {

DynamicGraph erdos_renyi(std::size_t num_vertices, std::size_t num_edges,
                         Rng& rng) {
  RIPPLE_CHECK(num_vertices >= 2);
  RIPPLE_CHECK_MSG(
      num_edges <= num_vertices * (num_vertices - 1),
      "too many edges requested for a simple directed graph");
  DynamicGraph graph(num_vertices);
  while (graph.num_edges() < num_edges) {
    const auto u = static_cast<VertexId>(rng.next_below(num_vertices));
    const auto v = static_cast<VertexId>(rng.next_below(num_vertices));
    if (u == v) continue;
    graph.add_edge(u, v);
  }
  return graph;
}

DynamicGraph barabasi_albert(std::size_t num_vertices,
                             std::size_t edges_per_vertex, Rng& rng) {
  RIPPLE_CHECK(num_vertices > edges_per_vertex);
  RIPPLE_CHECK(edges_per_vertex >= 1);
  DynamicGraph graph(num_vertices);
  // Repeated-vertex list trick: picking a uniform entry from `targets`
  // realizes the (in_degree + 1)-proportional attachment distribution.
  std::vector<VertexId> targets;
  targets.reserve(num_vertices * (edges_per_vertex + 1));
  // Seed clique among the first edges_per_vertex + 1 vertices.
  const std::size_t seed = edges_per_vertex + 1;
  for (VertexId u = 0; u < seed; ++u) {
    targets.push_back(u);
    for (VertexId v = 0; v < seed; ++v) {
      if (u != v) graph.add_edge(u, v);
    }
  }
  for (VertexId u = static_cast<VertexId>(seed); u < num_vertices; ++u) {
    std::size_t added = 0;
    std::size_t attempts = 0;
    while (added < edges_per_vertex && attempts < edges_per_vertex * 64) {
      ++attempts;
      const VertexId v = targets[rng.next_below(targets.size())];
      if (v == u) continue;
      if (graph.add_edge(u, v)) {
        targets.push_back(v);
        ++added;
      }
    }
    targets.push_back(u);
  }
  return graph;
}

DynamicGraph rmat(std::size_t num_vertices, std::size_t num_edges, double a,
                  double b, double c, double d, Rng& rng) {
  RIPPLE_CHECK(num_vertices >= 2);
  RIPPLE_CHECK_MSG(std::abs(a + b + c + d - 1.0) < 1e-6,
                   "rmat probabilities must sum to 1");
  std::size_t scale = 0;
  while ((std::size_t{1} << scale) < num_vertices) ++scale;
  DynamicGraph graph(num_vertices);
  std::size_t failures = 0;
  const std::size_t max_failures = num_edges * 64 + 1024;
  while (graph.num_edges() < num_edges && failures < max_failures) {
    std::size_t u = 0;
    std::size_t v = 0;
    for (std::size_t bit = 0; bit < scale; ++bit) {
      const double r = rng.next_double();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u >= num_vertices || v >= num_vertices || u == v ||
        !graph.add_edge(static_cast<VertexId>(u),
                        static_cast<VertexId>(v))) {
      ++failures;
    }
  }
  return graph;
}

DynamicGraph stochastic_block_model(std::size_t num_vertices,
                                    std::size_t num_blocks, double p_in,
                                    double p_out, Rng& rng,
                                    std::vector<std::uint32_t>* labels) {
  RIPPLE_CHECK(num_blocks >= 1 && num_vertices >= num_blocks);
  RIPPLE_CHECK(p_in >= 0 && p_in <= 1 && p_out >= 0 && p_out <= 1);
  DynamicGraph graph(num_vertices);
  std::vector<std::uint32_t> block_of(num_vertices);
  for (std::size_t v = 0; v < num_vertices; ++v) {
    block_of[v] = static_cast<std::uint32_t>(v % num_blocks);
  }
  // Geometric skipping makes generation O(edges) rather than O(n^2):
  // within each (same-block / cross-block) regime, the gap to the next
  // present edge is geometric with parameter p.
  auto sample_pairs = [&](double p, bool same_block) {
    if (p <= 0) return;
    const double log1mp = std::log(1.0 - p);
    // Iterate ordered pairs (u, v), u != v, lazily via a running index.
    const std::size_t total = num_vertices * num_vertices;
    std::size_t idx = 0;
    while (true) {
      const double r = rng.next_double();
      const auto skip = static_cast<std::size_t>(
          std::floor(std::log(1.0 - r) / log1mp));
      idx += skip + 1;
      if (idx > total) break;
      const std::size_t flat = idx - 1;
      const auto u = static_cast<VertexId>(flat / num_vertices);
      const auto v = static_cast<VertexId>(flat % num_vertices);
      if (u == v) continue;
      const bool same = block_of[u] == block_of[v];
      if (same == same_block) graph.add_edge(u, v, 1.0f);
    }
  };
  sample_pairs(p_in, /*same_block=*/true);
  sample_pairs(p_out, /*same_block=*/false);
  if (labels != nullptr) *labels = std::move(block_of);
  return graph;
}

}  // namespace ripple
