// Descriptive statistics over a graph's degree structure (Table 3 bench and
// generator sanity tests).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace ripple {

class DynamicGraph;

struct GraphStats {
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;
  double avg_in_degree = 0;
  std::size_t max_in_degree = 0;
  std::size_t max_out_degree = 0;
  std::size_t isolated_vertices = 0;  // zero in- AND out-degree
  double in_degree_p99 = 0;

  std::string to_string() const;
};

GraphStats compute_stats(const DynamicGraph& graph);

}  // namespace ripple
