#include "graph/stats.h"

#include <algorithm>
#include <sstream>

#include "graph/dynamic_graph.h"

namespace ripple {

GraphStats compute_stats(const DynamicGraph& graph) {
  GraphStats stats;
  stats.num_vertices = graph.num_vertices();
  stats.num_edges = graph.num_edges();
  stats.avg_in_degree = graph.avg_in_degree();
  std::vector<std::size_t> in_degrees;
  in_degrees.reserve(graph.num_vertices());
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    const std::size_t in_deg = graph.in_degree(v);
    const std::size_t out_deg = graph.out_degree(v);
    in_degrees.push_back(in_deg);
    stats.max_in_degree = std::max(stats.max_in_degree, in_deg);
    stats.max_out_degree = std::max(stats.max_out_degree, out_deg);
    if (in_deg == 0 && out_deg == 0) ++stats.isolated_vertices;
  }
  if (!in_degrees.empty()) {
    std::sort(in_degrees.begin(), in_degrees.end());
    stats.in_degree_p99 = static_cast<double>(
        in_degrees[static_cast<std::size_t>(0.99 * (in_degrees.size() - 1))]);
  }
  return stats;
}

std::string GraphStats::to_string() const {
  std::ostringstream os;
  os << "n=" << num_vertices << " m=" << num_edges
     << " avg_in_deg=" << avg_in_degree << " max_in=" << max_in_degree
     << " max_out=" << max_out_degree << " p99_in=" << in_degree_p99
     << " isolated=" << isolated_vertices;
  return os.str();
}

}  // namespace ripple
