#include "graph/dynamic_graph.h"

#include <algorithm>

#include "common/check.h"

namespace ripple {

void DynamicGraph::check_vertex(VertexId v) const {
  RIPPLE_CHECK_MSG(v < out_.size(),
                   "vertex " << v << " out of range (n=" << out_.size() << ')');
}

namespace {

std::vector<Neighbor>::iterator find_neighbor(std::vector<Neighbor>& list,
                                              VertexId target) {
  return std::find_if(list.begin(), list.end(), [target](const Neighbor& nb) {
    return nb.vertex == target;
  });
}

std::vector<Neighbor>::const_iterator find_neighbor(
    const std::vector<Neighbor>& list, VertexId target) {
  return std::find_if(list.begin(), list.end(), [target](const Neighbor& nb) {
    return nb.vertex == target;
  });
}

}  // namespace

bool DynamicGraph::add_edge(VertexId u, VertexId v, EdgeWeight weight) {
  check_vertex(u);
  check_vertex(v);
  if (find_neighbor(out_[u], v) != out_[u].end()) return false;
  out_[u].push_back({v, weight});
  in_[v].push_back({u, weight});
  ++num_edges_;
  return true;
}

bool DynamicGraph::remove_edge(VertexId u, VertexId v) {
  check_vertex(u);
  check_vertex(v);
  auto out_it = find_neighbor(out_[u], v);
  if (out_it == out_[u].end()) return false;
  // Swap-erase keeps removal O(degree) with no shifting.
  *out_it = out_[u].back();
  out_[u].pop_back();
  auto in_it = find_neighbor(in_[v], u);
  RIPPLE_CHECK_MSG(in_it != in_[v].end(),
                   "in/out adjacency out of sync for edge (" << u << ',' << v
                                                             << ')');
  *in_it = in_[v].back();
  in_[v].pop_back();
  --num_edges_;
  return true;
}

bool DynamicGraph::has_edge(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  return find_neighbor(out_[u], v) != out_[u].end();
}

EdgeWeight DynamicGraph::edge_weight(VertexId u, VertexId v) const {
  check_vertex(u);
  check_vertex(v);
  auto it = find_neighbor(out_[u], v);
  RIPPLE_CHECK_MSG(it != out_[u].end(),
                   "edge (" << u << ',' << v << ") not found");
  return it->weight;
}

bool DynamicGraph::set_edge_weight(VertexId u, VertexId v, EdgeWeight weight) {
  check_vertex(u);
  check_vertex(v);
  auto out_it = find_neighbor(out_[u], v);
  if (out_it == out_[u].end()) return false;
  out_it->weight = weight;
  auto in_it = find_neighbor(in_[v], u);
  RIPPLE_CHECK(in_it != in_[v].end());
  in_it->weight = weight;
  return true;
}

std::vector<DynamicGraph::Edge> DynamicGraph::edges() const {
  std::vector<Edge> result;
  result.reserve(num_edges_);
  for (VertexId u = 0; u < out_.size(); ++u) {
    for (const Neighbor& nb : out_[u]) {
      result.push_back({u, nb.vertex, nb.weight});
    }
  }
  return result;
}

std::size_t DynamicGraph::bytes() const {
  std::size_t total = 0;
  for (const auto& list : out_) total += list.capacity() * sizeof(Neighbor);
  for (const auto& list : in_) total += list.capacity() * sizeof(Neighbor);
  return total;
}

}  // namespace ripple
