#include "graph/io.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/check.h"

namespace ripple {

namespace {

constexpr char kGraphMagic[4] = {'R', 'P', 'L', 'G'};
constexpr char kMatrixMagic[4] = {'R', 'P', 'L', 'M'};

void write_bytes(std::ofstream& out, const void* data, std::size_t size) {
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  RIPPLE_CHECK_MSG(out.good(), "write failed");
}

void read_bytes(std::ifstream& in, void* data, std::size_t size) {
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(size));
  RIPPLE_CHECK_MSG(in.gcount() == static_cast<std::streamsize>(size),
                   "short read");
}

}  // namespace

void save_graph(const DynamicGraph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RIPPLE_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  write_bytes(out, kGraphMagic, sizeof(kGraphMagic));
  const std::uint64_t n = graph.num_vertices();
  const std::uint64_t m = graph.num_edges();
  write_bytes(out, &n, sizeof(n));
  write_bytes(out, &m, sizeof(m));
  for (const auto& edge : graph.edges()) {
    write_bytes(out, &edge.src, sizeof(edge.src));
    write_bytes(out, &edge.dst, sizeof(edge.dst));
    write_bytes(out, &edge.weight, sizeof(edge.weight));
  }
}

DynamicGraph load_graph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RIPPLE_CHECK_MSG(in.is_open(), "cannot open " << path);
  char magic[4];
  read_bytes(in, magic, sizeof(magic));
  RIPPLE_CHECK_MSG(std::memcmp(magic, kGraphMagic, 4) == 0,
                   "bad graph magic in " << path);
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  read_bytes(in, &n, sizeof(n));
  read_bytes(in, &m, sizeof(m));
  DynamicGraph graph(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < m; ++i) {
    VertexId src = 0;
    VertexId dst = 0;
    EdgeWeight weight = 1.0f;
    read_bytes(in, &src, sizeof(src));
    read_bytes(in, &dst, sizeof(dst));
    read_bytes(in, &weight, sizeof(weight));
    RIPPLE_CHECK_MSG(graph.add_edge(src, dst, weight),
                     "duplicate edge in file: (" << src << ',' << dst << ')');
  }
  return graph;
}

void save_matrix(const Matrix& matrix, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  RIPPLE_CHECK_MSG(out.is_open(), "cannot open " << path << " for writing");
  write_bytes(out, kMatrixMagic, sizeof(kMatrixMagic));
  const std::uint64_t rows = matrix.rows();
  const std::uint64_t cols = matrix.cols();
  write_bytes(out, &rows, sizeof(rows));
  write_bytes(out, &cols, sizeof(cols));
  write_bytes(out, matrix.data(), matrix.size() * sizeof(float));
}

Matrix load_matrix(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  RIPPLE_CHECK_MSG(in.is_open(), "cannot open " << path);
  char magic[4];
  read_bytes(in, magic, sizeof(magic));
  RIPPLE_CHECK_MSG(std::memcmp(magic, kMatrixMagic, 4) == 0,
                   "bad matrix magic in " << path);
  std::uint64_t rows = 0;
  std::uint64_t cols = 0;
  read_bytes(in, &rows, sizeof(rows));
  read_bytes(in, &cols, sizeof(cols));
  Matrix matrix(static_cast<std::size_t>(rows), static_cast<std::size_t>(cols));
  read_bytes(in, matrix.data(), matrix.size() * sizeof(float));
  return matrix;
}

}  // namespace ripple
