// Immutable compressed-sparse-row snapshot of a directed graph.
//
// Serves two roles: (1) fast bootstrap inference over the initial snapshot
// and (2) the storage model of the DGL-emulated baselines, where applying a
// streaming update forces a full rebuild (the expensive "Update" phase of
// Fig. 8).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ripple {

class DynamicGraph;

class Csr {
 public:
  Csr() = default;

  // Builds both in- and out-direction CSR from the dynamic graph.
  static Csr from_graph(const DynamicGraph& graph);

  std::size_t num_vertices() const {
    return in_offsets_.empty() ? 0 : in_offsets_.size() - 1;
  }
  std::size_t num_edges() const { return in_neighbors_.size(); }

  std::span<const Neighbor> in_neighbors(VertexId v) const {
    return {in_neighbors_.data() + in_offsets_[v],
            in_offsets_[v + 1] - in_offsets_[v]};
  }
  std::span<const Neighbor> out_neighbors(VertexId u) const {
    return {out_neighbors_.data() + out_offsets_[u],
            out_offsets_[u + 1] - out_offsets_[u]};
  }

  std::size_t in_degree(VertexId v) const {
    return in_offsets_[v + 1] - in_offsets_[v];
  }
  std::size_t out_degree(VertexId u) const {
    return out_offsets_[u + 1] - out_offsets_[u];
  }

  std::size_t bytes() const {
    return (in_offsets_.size() + out_offsets_.size()) * sizeof(std::size_t) +
           (in_neighbors_.size() + out_neighbors_.size()) * sizeof(Neighbor);
  }

 private:
  std::vector<std::size_t> in_offsets_;
  std::vector<Neighbor> in_neighbors_;
  std::vector<std::size_t> out_offsets_;
  std::vector<Neighbor> out_neighbors_;
};

}  // namespace ripple
