// Mutable directed graph backed by per-vertex edge lists.
//
// This is the "lightweight edge list structure designed to efficiently
// handle streaming updates" from the paper (§6): edge insertion/removal is
// O(out_degree(u) + in_degree(v)) with no global rebuild, unlike CSR-based
// stores (see infer/dgl_emu for the contrast). Both out- and in-adjacency
// are maintained because update propagation pushes along out-edges while
// recompute baselines pull along in-edges.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "graph/types.h"

namespace ripple {

class DynamicGraph {
 public:
  DynamicGraph() = default;
  explicit DynamicGraph(std::size_t num_vertices)
      : out_(num_vertices), in_(num_vertices) {}

  std::size_t num_vertices() const { return out_.size(); }
  std::size_t num_edges() const { return num_edges_; }

  // Inserts directed edge (u, v). Returns false (and leaves the graph
  // unchanged) if the edge already exists. Self-loops are allowed; parallel
  // edges are not.
  bool add_edge(VertexId u, VertexId v, EdgeWeight weight = 1.0f);

  // Removes directed edge (u, v); returns false if it was absent.
  bool remove_edge(VertexId u, VertexId v);

  bool has_edge(VertexId u, VertexId v) const;

  // Weight of edge (u, v); checks that the edge exists.
  EdgeWeight edge_weight(VertexId u, VertexId v) const;

  // Updates the weight of an existing edge; returns false if absent.
  bool set_edge_weight(VertexId u, VertexId v, EdgeWeight weight);

  std::size_t out_degree(VertexId u) const { return out_[u].size(); }
  std::size_t in_degree(VertexId v) const { return in_[v].size(); }

  std::span<const Neighbor> out_neighbors(VertexId u) const {
    return out_[u];
  }
  std::span<const Neighbor> in_neighbors(VertexId v) const { return in_[v]; }

  double avg_in_degree() const {
    return num_vertices() == 0
               ? 0.0
               : static_cast<double>(num_edges_) / num_vertices();
  }

  // All edges as (u, v, w) triples, ordered by source id (test/IO helper).
  struct Edge {
    VertexId src;
    VertexId dst;
    EdgeWeight weight;
    friend bool operator==(const Edge&, const Edge&) = default;
  };
  std::vector<Edge> edges() const;

  // Approximate resident bytes of the adjacency structures.
  std::size_t bytes() const;

 private:
  void check_vertex(VertexId v) const;

  std::vector<std::vector<Neighbor>> out_;
  std::vector<std::vector<Neighbor>> in_;
  std::size_t num_edges_ = 0;
};

}  // namespace ripple
