#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/scheduler.h"
#include "common/thread_pool.h"

namespace ripple {

namespace {

// Selects the gemm/gemv table entry matching the pack's storage precision
// (kernels.h): these wrappers are the single place precision dispatch
// happens, so layer and engine code just passes panels around.
auto gemm_packed_fn(const KernelOps& ops, Precision p) {
  switch (p) {
    case Precision::kF32: return ops.gemm_packed;
    case Precision::kBf16: return ops.gemm_packed_bf16;
    case Precision::kInt8: return ops.gemm_packed_int8;
  }
  return ops.gemm_packed;
}

auto gemv_packed_fn(const KernelOps& ops, Precision p) {
  switch (p) {
    case Precision::kF32: return ops.gemv_accum_packed;
    case Precision::kBf16: return ops.gemv_accum_packed_bf16;
    case Precision::kInt8: return ops.gemv_accum_packed_int8;
  }
  return ops.gemv_accum_packed;
}

// One body for both parallel backends (ThreadPool static chunks vs
// work-stealing row blocks). Row results are split-independent, so the
// output bits match the serial path.
template <typename Par>
void gemm_impl(const Matrix& a, const PackedMatrix& b, Matrix& c, Par* par) {
  RIPPLE_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: a is "
                                             << a.rows() << 'x' << a.cols()
                                             << ", b is " << b.rows() << 'x'
                                             << b.cols());
  c.resize_no_fill(a.rows(), b.cols());
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  const KernelOps& ops = kernels();
  const auto gemm_fn = gemm_packed_fn(ops, b.precision());
  auto rows = [&](std::size_t lo, std::size_t hi) {
    gemm_fn(a.data() + lo * k, hi - lo, k, k, b, c.data() + lo * n, n);
  };
  if (par != nullptr && m >= 128) {
    if constexpr (std::is_same_v<Par, ThreadPool>) {
      par->parallel_for(0, m, rows, 64);
    } else {
      par->parallel_range(0, m, rows, 64);
    }
  } else {
    rows(0, m);
  }
}

// Keyed pack cache for the serial Matrix-B gemm path (see ops.h). A few
// LRU entries keyed by (data pointer, shape); a hit is only served after
// an FNV-1a content hash over B's element bits matches, so in-place weight
// mutation and allocator address reuse both read as misses rather than
// stale panels. The hash pass is a sequential read of B — strictly cheaper
// than the repack (read + panel write + possible allocation) it replaces,
// and alternating B's no longer thrash a single scratch slot.
struct PackCache {
  struct Entry {
    const float* data = nullptr;
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::uint64_t hash = 0;
    std::uint64_t stamp = 0;
    PackedMatrix packed;
  };
  static constexpr std::size_t kEntries = 4;
  Entry entries[kEntries];
  std::uint64_t clock = 0;
  GemmPackCacheStats stats;
};

thread_local PackCache g_pack_cache;

std::uint64_t content_hash(const Matrix& b) {
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const unsigned char* p = reinterpret_cast<const unsigned char*>(b.data());
  std::size_t nbytes = b.size() * sizeof(float);
  while (nbytes >= 8) {
    std::uint64_t block;
    std::memcpy(&block, p, 8);
    h = (h ^ block) * kPrime;
    p += 8;
    nbytes -= 8;
  }
  while (nbytes > 0) {
    h = (h ^ *p++) * kPrime;
    --nbytes;
  }
  return h;
}

const PackedMatrix& pack_cached(const Matrix& b) {
  PackCache& cache = g_pack_cache;
  const std::uint64_t h = content_hash(b);
  ++cache.clock;
  PackCache::Entry* victim = &cache.entries[0];
  for (PackCache::Entry& e : cache.entries) {
    if (e.data == b.data() && e.rows == b.rows() && e.cols == b.cols() &&
        e.hash == h) {
      e.stamp = cache.clock;
      ++cache.stats.hits;
      return e.packed;
    }
    if (e.stamp < victim->stamp) victim = &e;
  }
  ++cache.stats.misses;
  victim->data = b.data();
  victim->rows = b.rows();
  victim->cols = b.cols();
  victim->hash = h;
  victim->stamp = cache.clock;
  victim->packed.assign(b);
  return victim->packed;
}

// Per-call B packing for the Matrix-B gemm overloads. The SERIAL path
// packs through the keyed cache (gemm never calls itself, so no
// reentrancy on one thread). The PARALLEL paths pack into a call-local
// buffer instead: while a region drains, the calling participant may
// help-execute or steal an UNRELATED task that itself packs — which would
// clobber a cached entry while this call's row blocks still read it. One
// allocation per ≥128-row GEMM is noise next to the m·k·n work (and layer
// weights take the pre-packed overloads anyway).
template <typename Par>
void gemm_pack_b(const Matrix& a, const Matrix& b, Matrix& c, Par* par) {
  if (par != nullptr && a.rows() >= 128) {
    PackedMatrix local;
    local.assign(b);
    gemm_impl(a, local, c, par);
    return;
  }
  gemm_impl(a, pack_cached(b), c, static_cast<Par*>(nullptr));
}

}  // namespace

GemmPackCacheStats gemm_pack_cache_stats() { return g_pack_cache.stats; }

void gemm_pack_cache_reset() {
  for (PackCache::Entry& e : g_pack_cache.entries) e = PackCache::Entry{};
  g_pack_cache.clock = 0;
  g_pack_cache.stats = GemmPackCacheStats{};
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c, ThreadPool* pool) {
  gemm_pack_b(a, b, c, pool);
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          WorkStealingScheduler* scheduler) {
  gemm_pack_b(a, b, c, scheduler);
}

void gemm(const Matrix& a, const PackedMatrix& b, Matrix& c,
          ThreadPool* pool) {
  gemm_impl(a, b, c, pool);
}

void gemm(const Matrix& a, const PackedMatrix& b, Matrix& c,
          WorkStealingScheduler* scheduler) {
  gemm_impl(a, b, c, scheduler);
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  RIPPLE_CHECK_MSG(a.rows() == b.rows(), "gemm_at_b shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  c.resize_no_fill(m, n);
  c.fill(0.0f);
  const KernelOps& ops = kernels();
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      ops.vec_axpy(c.data() + i * n, ap[i], bp, n);
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  RIPPLE_CHECK_MSG(a.cols() == b.cols(), "gemm_a_bt shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  c.resize_no_fill(m, n);
  const KernelOps& ops = kernels();
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      ci[j] = ops.vec_dot(ai, b.data() + j * k, k);
    }
  }
}

void add_bias_rows(Matrix& dst, const Matrix& bias) {
  RIPPLE_CHECK(bias.rows() == 1 && bias.cols() == dst.cols());
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    vec_add(dst.row(r), bias.row(0));
  }
}

void gemv_row(std::span<const float> x, const Matrix& w, std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  std::fill(y.begin(), y.end(), 0.0f);
  kernels().gemv_accum(x.data(), x.size(), w.data(), w.cols(), y.data(),
                       y.size());
}

void gemv_row_accum(std::span<const float> x, const Matrix& w,
                    std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  kernels().gemv_accum(x.data(), x.size(), w.data(), w.cols(), y.data(),
                       y.size());
}

void gemv_row(std::span<const float> x, const PackedMatrix& w,
              std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  std::fill(y.begin(), y.end(), 0.0f);
  const KernelOps& ops = kernels();
  gemv_packed_fn(ops, w.precision())(x.data(), x.size(), w, y.data());
}

void gemv_row_accum(std::span<const float> x, const PackedMatrix& w,
                    std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  const KernelOps& ops = kernels();
  gemv_packed_fn(ops, w.precision())(x.data(), x.size(), w, y.data());
}

void vec_copy(std::span<const float> src, std::span<float> dst) {
  RIPPLE_CHECK(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void vec_fill(std::span<float> dst, float value) {
  std::fill(dst.begin(), dst.end(), value);
}

void vec_add(std::span<float> dst, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  kernels().vec_add(dst.data(), src.data(), dst.size());
}

void vec_sub(std::span<float> dst, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  kernels().vec_sub(dst.data(), src.data(), dst.size());
}

void vec_axpy(std::span<float> dst, float alpha, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  kernels().vec_axpy(dst.data(), alpha, src.data(), dst.size());
}

void vec_scale(std::span<float> dst, float alpha) {
  kernels().vec_scale(dst.data(), alpha, dst.size());
}

float vec_dot(std::span<const float> a, std::span<const float> b) {
  RIPPLE_CHECK(a.size() == b.size());
  return kernels().vec_dot(a.data(), b.data(), a.size());
}

float vec_l2(std::span<const float> a) {
  return std::sqrt(vec_dot(a, a));
}

float vec_linf_diff(std::span<const float> a, std::span<const float> b) {
  RIPPLE_CHECK(a.size() == b.size());
  float m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void relu_inplace(Matrix& m) {
  kernels().relu(m.data(), m.size());
}

void relu_row(std::span<float> row) {
  kernels().relu(row.data(), row.size());
}

void relu_backward_row(std::span<const float> pre, std::span<float> grad) {
  RIPPLE_CHECK(pre.size() == grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (pre[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (auto& v : row) v *= inv;
  }
}

std::size_t argmax_row(std::span<const float> row) {
  RIPPLE_CHECK(!row.empty());
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  RIPPLE_CHECK_MSG(a.same_shape(b), "shape mismatch " << a.rows() << 'x'
                                                      << a.cols() << " vs "
                                                      << b.rows() << 'x'
                                                      << b.cols());
  float m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace ripple
