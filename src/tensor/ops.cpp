#include "tensor/ops.h"

#include <algorithm>
#include <cmath>

#include "common/scheduler.h"
#include "common/thread_pool.h"

namespace ripple {

namespace {

// Inner kernel for one row strip of C = A * B.
void gemm_rows(const Matrix& a, const Matrix& b, Matrix& c, std::size_t r0,
               std::size_t r1) {
  const std::size_t k = a.cols();
  const std::size_t n = b.cols();
  for (std::size_t i = r0; i < r1; ++i) {
    float* ci = c.data() + i * n;
    std::fill(ci, ci + n, 0.0f);
    const float* ai = a.data() + i * k;
    for (std::size_t p = 0; p < k; ++p) {
      const float aip = ai[p];
      if (aip == 0.0f) continue;
      const float* bp = b.data() + p * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

}  // namespace

void gemm(const Matrix& a, const Matrix& b, Matrix& c, ThreadPool* pool) {
  RIPPLE_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: a is "
                                             << a.rows() << 'x' << a.cols()
                                             << ", b is " << b.rows() << 'x'
                                             << b.cols());
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c.resize(a.rows(), b.cols());
  }
  const std::size_t m = a.rows();
  if (pool != nullptr && m >= 128) {
    pool->parallel_for(
        0, m, [&](std::size_t lo, std::size_t hi) { gemm_rows(a, b, c, lo, hi); },
        64);
  } else {
    gemm_rows(a, b, c, 0, m);
  }
}

void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          WorkStealingScheduler* scheduler) {
  RIPPLE_CHECK_MSG(a.cols() == b.rows(), "gemm shape mismatch: a is "
                                             << a.rows() << 'x' << a.cols()
                                             << ", b is " << b.rows() << 'x'
                                             << b.cols());
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    c.resize(a.rows(), b.cols());
  }
  const std::size_t m = a.rows();
  if (scheduler != nullptr && m >= 128) {
    scheduler->parallel_range(
        0, m,
        [&](std::size_t lo, std::size_t hi) { gemm_rows(a, b, c, lo, hi); },
        64);
  } else {
    gemm_rows(a, b, c, 0, m);
  }
}

void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c) {
  RIPPLE_CHECK_MSG(a.rows() == b.rows(), "gemm_at_b shape mismatch");
  const std::size_t m = a.cols();
  const std::size_t k = a.rows();
  const std::size_t n = b.cols();
  if (c.rows() != m || c.cols() != n) c.resize(m, n);
  c.fill(0.0f);
  for (std::size_t p = 0; p < k; ++p) {
    const float* ap = a.data() + p * m;
    const float* bp = b.data() + p * n;
    for (std::size_t i = 0; i < m; ++i) {
      const float aip = ap[i];
      if (aip == 0.0f) continue;
      float* ci = c.data() + i * n;
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c) {
  RIPPLE_CHECK_MSG(a.cols() == b.cols(), "gemm_a_bt shape mismatch");
  const std::size_t m = a.rows();
  const std::size_t k = a.cols();
  const std::size_t n = b.rows();
  if (c.rows() != m || c.cols() != n) c.resize(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    const float* ai = a.data() + i * k;
    float* ci = c.data() + i * n;
    for (std::size_t j = 0; j < n; ++j) {
      const float* bj = b.data() + j * k;
      float acc = 0;
      for (std::size_t p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] = acc;
    }
  }
}

void add_bias_rows(Matrix& dst, const Matrix& bias) {
  RIPPLE_CHECK(bias.rows() == 1 && bias.cols() == dst.cols());
  for (std::size_t r = 0; r < dst.rows(); ++r) {
    vec_add(dst.row(r), bias.row(0));
  }
}

void gemv_row(std::span<const float> x, const Matrix& w, std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  std::fill(y.begin(), y.end(), 0.0f);
  gemv_row_accum(x, w, y);
}

void gemv_row_accum(std::span<const float> x, const Matrix& w,
                    std::span<float> y) {
  RIPPLE_CHECK(x.size() == w.rows() && y.size() == w.cols());
  const std::size_t n = w.cols();
  for (std::size_t p = 0; p < x.size(); ++p) {
    const float xp = x[p];
    if (xp == 0.0f) continue;
    const float* wp = w.data() + p * n;
    for (std::size_t j = 0; j < n; ++j) y[j] += xp * wp[j];
  }
}

void vec_copy(std::span<const float> src, std::span<float> dst) {
  RIPPLE_CHECK(src.size() == dst.size());
  std::copy(src.begin(), src.end(), dst.begin());
}

void vec_fill(std::span<float> dst, float value) {
  std::fill(dst.begin(), dst.end(), value);
}

void vec_add(std::span<float> dst, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += src[i];
}

void vec_sub(std::span<float> dst, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] -= src[i];
}

void vec_axpy(std::span<float> dst, float alpha, std::span<const float> src) {
  RIPPLE_CHECK(src.size() == dst.size());
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] += alpha * src[i];
}

void vec_scale(std::span<float> dst, float alpha) {
  for (auto& v : dst) v *= alpha;
}

float vec_dot(std::span<const float> a, std::span<const float> b) {
  RIPPLE_CHECK(a.size() == b.size());
  float acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

float vec_l2(std::span<const float> a) {
  return std::sqrt(vec_dot(a, a));
}

float vec_linf_diff(std::span<const float> a, std::span<const float> b) {
  RIPPLE_CHECK(a.size() == b.size());
  float m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a[i] - b[i]));
  }
  return m;
}

void relu_inplace(Matrix& m) {
  float* p = m.data();
  for (std::size_t i = 0; i < m.size(); ++i) p[i] = std::max(0.0f, p[i]);
}

void relu_row(std::span<float> row) {
  for (auto& v : row) v = std::max(0.0f, v);
}

void relu_backward_row(std::span<const float> pre, std::span<float> grad) {
  RIPPLE_CHECK(pre.size() == grad.size());
  for (std::size_t i = 0; i < grad.size(); ++i) {
    if (pre[i] <= 0.0f) grad[i] = 0.0f;
  }
}

void softmax_rows(Matrix& m) {
  for (std::size_t r = 0; r < m.rows(); ++r) {
    auto row = m.row(r);
    const float mx = *std::max_element(row.begin(), row.end());
    float sum = 0;
    for (auto& v : row) {
      v = std::exp(v - mx);
      sum += v;
    }
    const float inv = 1.0f / sum;
    for (auto& v : row) v *= inv;
  }
}

std::size_t argmax_row(std::span<const float> row) {
  RIPPLE_CHECK(!row.empty());
  return static_cast<std::size_t>(
      std::max_element(row.begin(), row.end()) - row.begin());
}

float max_abs_diff(const Matrix& a, const Matrix& b) {
  RIPPLE_CHECK_MSG(a.same_shape(b), "shape mismatch " << a.rows() << 'x'
                                                      << a.cols() << " vs "
                                                      << b.rows() << 'x'
                                                      << b.cols());
  float m = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::abs(a.data()[i] - b.data()[i]));
  }
  return m;
}

}  // namespace ripple
