// Dispatch and packing for the SIMD kernel subsystem (see kernels.h).
#include "tensor/kernels.h"

#include <atomic>
#include <cstring>

#include "common/check.h"
#include "common/flags.h"

namespace ripple {

const char* kernel_isa_name(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return "scalar";
    case KernelIsa::kSse2: return "sse2";
    case KernelIsa::kAvx2: return "avx2";
    case KernelIsa::kAvx512: return "avx512";
  }
  return "?";
}

const char* kernel_mode_name(KernelMode mode) {
  switch (mode) {
    case KernelMode::kAuto: return "auto";
    case KernelMode::kScalar: return "scalar";
  }
  return "?";
}

KernelMode parse_kernel_mode(const std::string& name) {
  if (name == "auto") return KernelMode::kAuto;
  if (name == "scalar") return KernelMode::kScalar;
  throw check_error("unknown kernel mode '" + name +
                    "' (expected auto|scalar)");
}

const std::vector<std::string>& kernel_mode_choices() {
  static const std::vector<std::string> choices = {"auto", "scalar"};
  return choices;
}

const char* apply_kernel_flag(const Flags& flags) {
  set_kernel_mode(parse_kernel_mode(
      flags.get_choice("kernels", kernel_mode_choices(), "auto")));
  return kernel_isa_name(active_kernel_isa());
}

void PackedMatrix::assign(const Matrix& w, Precision precision) {
  rows_ = w.rows();
  cols_ = w.cols();
  precision_ = precision;
  const std::size_t panels = num_panels();
  const std::size_t elems = panels * rows_ * kPanelWidth;
  // Keep only the active format's buffer allocated (a repack at a new
  // precision releases the old panels rather than carrying both).
  if (precision != Precision::kF32) AlignedVector().swap(data_);
  if (precision != Precision::kBf16) {
    std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>>().swap(
        data_bf16_);
  }
  if (precision != Precision::kInt8) {
    std::vector<std::int8_t, AlignedAllocator<std::int8_t>>().swap(
        data_int8_);
    scales_.clear();
  }
  switch (precision) {
    case Precision::kF32: data_.resize(elems); break;
    case Precision::kBf16: data_bf16_.resize(elems); break;
    case Precision::kInt8:
      data_int8_.resize(elems);
      scales_.resize(panels);
      break;
  }
  for (std::size_t pj = 0; pj < panels; ++pj) {
    const std::size_t j0 = pj * kPanelWidth;
    const std::size_t jw = std::min(kPanelWidth, cols_ - j0);
    const std::size_t base = pj * rows_ * kPanelWidth;
    if (precision == Precision::kInt8) {
      // Panel scale covers the panel's REAL columns only — padded lanes
      // are zero codes and must not widen the quantization range.
      float max_abs = 0.0f;
      for (std::size_t p = 0; p < rows_; ++p) {
        const float* src = w.data() + p * cols_ + j0;
        const float s = int8_scale(src, jw);
        if (s > max_abs) max_abs = s;
      }
      scales_[pj] = max_abs;  // int8_scale already divides by 127
    }
    for (std::size_t p = 0; p < rows_; ++p) {
      const float* src = w.data() + p * cols_ + j0;
      switch (precision) {
        case Precision::kF32: {
          float* dst = data_.data() + base + p * kPanelWidth;
          std::memcpy(dst, src, jw * sizeof(float));
          if (jw < kPanelWidth) {
            std::memset(dst + jw, 0, (kPanelWidth - jw) * sizeof(float));
          }
          break;
        }
        case Precision::kBf16: {
          std::uint16_t* dst = data_bf16_.data() + base + p * kPanelWidth;
          for (std::size_t lane = 0; lane < jw; ++lane) {
            dst[lane] = bf16_from_f32(src[lane]);
          }
          for (std::size_t lane = jw; lane < kPanelWidth; ++lane) {
            dst[lane] = 0;
          }
          break;
        }
        case Precision::kInt8: {
          std::int8_t* dst = data_int8_.data() + base + p * kPanelWidth;
          const float scale = scales_[pj];
          for (std::size_t lane = 0; lane < jw; ++lane) {
            dst[lane] = int8_quantize(src[lane], scale);
          }
          for (std::size_t lane = jw; lane < kPanelWidth; ++lane) {
            dst[lane] = 0;
          }
          break;
        }
      }
    }
  }
}

std::size_t PackedMatrix::bytes() const {
  switch (precision_) {
    case Precision::kF32: return data_.size() * sizeof(float);
    case Precision::kBf16: return data_bf16_.size() * sizeof(std::uint16_t);
    case Precision::kInt8:
      return data_int8_.size() * sizeof(std::int8_t) +
             scales_.size() * sizeof(float);
  }
  return 0;
}

namespace {

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

bool cpu_has_avx512f() {
#if defined(__x86_64__) || defined(__i386__)
  return __builtin_cpu_supports("avx512f") != 0;
#else
  return false;
#endif
}

const KernelOps* best_table(KernelMode mode) {
#ifdef RIPPLE_FORCE_SCALAR_KERNELS
  (void)mode;
  return scalar_kernel_ops();
#else
  if (mode == KernelMode::kScalar) return scalar_kernel_ops();
  if (const KernelOps* avx512 = avx512_kernel_ops();
      avx512 != nullptr && cpu_has_avx512f()) {
    return avx512;
  }
  if (const KernelOps* avx2 = avx2_kernel_ops();
      avx2 != nullptr && cpu_has_avx2()) {
    return avx2;
  }
  if (const KernelOps* sse2 = sse2_kernel_ops(); sse2 != nullptr) return sse2;
  return scalar_kernel_ops();
#endif
}

std::atomic<KernelMode> g_mode{KernelMode::kAuto};
std::atomic<const KernelOps*> g_active{nullptr};

}  // namespace

const KernelOps& kernels() {
  const KernelOps* ops = g_active.load(std::memory_order_acquire);
  if (ops == nullptr) {
    const KernelOps* fresh =
        best_table(g_mode.load(std::memory_order_acquire));
    // CAS from nullptr only: lazy first-use detection must never clobber a
    // table installed by a concurrent explicit set_kernel_mode().
    if (g_active.compare_exchange_strong(ops, fresh,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire)) {
      return *fresh;
    }
  }
  return *ops;
}

void set_kernel_mode(KernelMode mode) {
  g_mode.store(mode, std::memory_order_release);
  g_active.store(best_table(mode), std::memory_order_release);
}

KernelMode kernel_mode() { return g_mode.load(std::memory_order_acquire); }

KernelIsa active_kernel_isa() { return kernels().isa; }

const KernelOps* kernel_ops_for(KernelIsa isa) {
  switch (isa) {
    case KernelIsa::kScalar: return scalar_kernel_ops();
    case KernelIsa::kSse2: return sse2_kernel_ops();
    case KernelIsa::kAvx2:
      return cpu_has_avx2() ? avx2_kernel_ops() : nullptr;
    case KernelIsa::kAvx512:
      return cpu_has_avx512f() ? avx512_kernel_ops() : nullptr;
  }
  return nullptr;
}

std::vector<KernelIsa> available_kernel_isas() {
  std::vector<KernelIsa> isas{KernelIsa::kScalar};
  if (kernel_ops_for(KernelIsa::kSse2) != nullptr) {
    isas.push_back(KernelIsa::kSse2);
  }
  if (kernel_ops_for(KernelIsa::kAvx2) != nullptr) {
    isas.push_back(KernelIsa::kAvx2);
  }
  if (kernel_ops_for(KernelIsa::kAvx512) != nullptr) {
    isas.push_back(KernelIsa::kAvx512);
  }
  return isas;
}

}  // namespace ripple
