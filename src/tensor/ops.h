// Dense kernels: GEMM/GEMV, vector (row) arithmetic, activations, softmax.
// GEMM is blocked and optionally threaded via the global pool; GEMV serves
// the per-vertex Update step on Ripple's hot path.
#pragma once

#include <span>

#include "tensor/matrix.h"

namespace ripple {

class ThreadPool;
class WorkStealingScheduler;

// C = A (m x k) * B (k x n). C is resized. Threaded for large m.
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          ThreadPool* pool = nullptr);

// Work-stealing variant: row blocks become stealable tasks. Safe to call
// from INSIDE a scheduler task (the nested blocks are stolen by idle
// participants instead of the range serializing inline) — this is how a hot
// shard's blocked Update GEMM spreads across the pool. Row results are
// independent of the split, so the output bits match the serial path.
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          WorkStealingScheduler* scheduler);

// C = A^T (k x m)^T * B (k x n) -> (m x n). Used for weight gradients.
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c);

// C = A (m x k) * B^T (n x k)^T -> (m x n). Used for input gradients.
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

// dst (m x n) += broadcast row bias (1 x n) to every row.
void add_bias_rows(Matrix& dst, const Matrix& bias);

// y (1 x n) = x (1 x k) * W (k x n). y must have size n.
void gemv_row(std::span<const float> x, const Matrix& w, std::span<float> y);

// y += x * W (row GEMV accumulate).
void gemv_row_accum(std::span<const float> x, const Matrix& w,
                    std::span<float> y);

// Row/vector primitives (all spans must have equal length).
void vec_copy(std::span<const float> src, std::span<float> dst);
void vec_fill(std::span<float> dst, float value);
void vec_add(std::span<float> dst, std::span<const float> src);        // dst += src
void vec_sub(std::span<float> dst, std::span<const float> src);        // dst -= src
void vec_axpy(std::span<float> dst, float alpha, std::span<const float> src);  // dst += alpha*src
void vec_scale(std::span<float> dst, float alpha);                     // dst *= alpha
float vec_dot(std::span<const float> a, std::span<const float> b);
float vec_l2(std::span<const float> a);
float vec_linf_diff(std::span<const float> a, std::span<const float> b);

// Activations.
void relu_inplace(Matrix& m);
void relu_row(std::span<float> row);
// dst = relu'(pre_activation) ⊙ dst  (backward helper; pre > 0 mask).
void relu_backward_row(std::span<const float> pre, std::span<float> grad);

// Row-wise softmax (in place) and cross-entropy loss helpers for training.
void softmax_rows(Matrix& m);
std::size_t argmax_row(std::span<const float> row);

// Max |a - b| over all entries; shapes must match.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace ripple
