// Dense kernels: GEMM/GEMV, vector (row) arithmetic, activations, softmax.
// These are thin shape-checking wrappers over the SIMD-dispatched kernel
// subsystem (tensor/kernels.h): the actual loops live in the per-ISA tiers
// and are selected once at startup (overridable via --kernels=auto|scalar).
// GEMM is cache-blocked over packed-B panels and optionally threaded via
// the global pool or the work-stealing scheduler; GEMV serves the
// per-vertex Update step on Ripple's hot path.
//
// Determinism: every op's output bits are independent of the selected tier
// and of packed-vs-unpacked B (see the contract in kernels.h), so callers
// may mix paths freely without breaking the engines' bit-exactness suites.
#pragma once

#include <span>

#include "tensor/kernels.h"
#include "tensor/matrix.h"

namespace ripple {

class ThreadPool;
class WorkStealingScheduler;

// C = A (m x k) * B (k x n). C is resized. Threaded for large m. B is
// packed into panels via a small per-thread keyed cache (see
// gemm_pack_cache_stats below): repeated serial GEMMs against the same
// unchanged B skip the repack. Callers multiplying by an immutable matrix
// repeatedly (layer weights) should still pack once and use the
// PackedMatrix overloads — those also select the reduced-precision kernel
// matching the pack's precision.
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          ThreadPool* pool = nullptr);

// Work-stealing variant: row blocks become stealable tasks. Safe to call
// from INSIDE a scheduler task (the nested blocks are stolen by idle
// participants instead of the range serializing inline) — this is how a hot
// shard's blocked Update GEMM spreads across the pool. Row results are
// independent of the split, so the output bits match the serial path.
void gemm(const Matrix& a, const Matrix& b, Matrix& c,
          WorkStealingScheduler* scheduler);

// Pre-packed-B variants (b.rows() is the reduction depth k): bit-identical
// to the Matrix-B overloads, minus the per-call packing.
void gemm(const Matrix& a, const PackedMatrix& b, Matrix& c,
          ThreadPool* pool = nullptr);
void gemm(const Matrix& a, const PackedMatrix& b, Matrix& c,
          WorkStealingScheduler* scheduler);

// The serial Matrix-B gemm packs B through a per-thread LRU cache of a few
// entries keyed by (data pointer, shape) and VALIDATED by a content hash on
// every hit — an in-place weight mutation or a reused allocation misses
// instead of serving stale panels. The parallel (≥128-row) path bypasses
// the cache (a stolen unrelated task could otherwise clobber the shared
// entry mid-GEMM) exactly as it bypassed the old thread_local scratch.
struct GemmPackCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
};
// Stats and reset for the CALLING thread's cache (test hooks).
GemmPackCacheStats gemm_pack_cache_stats();
void gemm_pack_cache_reset();

// C = A^T (k x m)^T * B (k x n) -> (m x n). Used for weight gradients.
void gemm_at_b(const Matrix& a, const Matrix& b, Matrix& c);

// C = A (m x k) * B^T (n x k)^T -> (m x n). Used for input gradients.
void gemm_a_bt(const Matrix& a, const Matrix& b, Matrix& c);

// dst (m x n) += broadcast row bias (1 x n) to every row.
void add_bias_rows(Matrix& dst, const Matrix& bias);

// y (1 x n) = x (1 x k) * W (k x n). y must have size n.
void gemv_row(std::span<const float> x, const Matrix& w, std::span<float> y);

// y += x * W (row GEMV accumulate).
void gemv_row_accum(std::span<const float> x, const Matrix& w,
                    std::span<float> y);

// Packed-W variants of the row GEMV (the per-vertex Update fast path:
// sequential panel streams instead of strided weight walks). Bit-identical
// to the Matrix-W overloads.
void gemv_row(std::span<const float> x, const PackedMatrix& w,
              std::span<float> y);
void gemv_row_accum(std::span<const float> x, const PackedMatrix& w,
                    std::span<float> y);

// Row/vector primitives (all spans must have equal length).
void vec_copy(std::span<const float> src, std::span<float> dst);
void vec_fill(std::span<float> dst, float value);
void vec_add(std::span<float> dst, std::span<const float> src);        // dst += src
void vec_sub(std::span<float> dst, std::span<const float> src);        // dst -= src
void vec_axpy(std::span<float> dst, float alpha, std::span<const float> src);  // dst += alpha*src
void vec_scale(std::span<float> dst, float alpha);                     // dst *= alpha
float vec_dot(std::span<const float> a, std::span<const float> b);
float vec_l2(std::span<const float> a);
float vec_linf_diff(std::span<const float> a, std::span<const float> b);

// Activations.
void relu_inplace(Matrix& m);
void relu_row(std::span<float> row);
// dst = relu'(pre_activation) ⊙ dst  (backward helper; pre > 0 mask).
void relu_backward_row(std::span<const float> pre, std::span<float> grad);

// Row-wise softmax (in place) and cross-entropy loss helpers for training.
void softmax_rows(Matrix& m);
std::size_t argmax_row(std::span<const float> row);

// Max |a - b| over all entries; shapes must match.
float max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace ripple
