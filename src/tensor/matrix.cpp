#include "tensor/matrix.h"

#include <cmath>

#include "common/rng.h"

namespace ripple {

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const float bound =
      std::sqrt(6.0f / static_cast<float>(rows + cols));
  for (auto& v : m.data_) v = rng.next_float(-bound, bound);
  return m;
}

Matrix Matrix::random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                              float lo, float hi) {
  Matrix m(rows, cols);
  for (auto& v : m.data_) v = rng.next_float(lo, hi);
  return m;
}

}  // namespace ripple
