// Precision-tier dispatch and int8 quantization helpers (see precision.h).
#include "tensor/precision.h"

#include <atomic>
#include <cmath>

#include "common/check.h"
#include "common/flags.h"

namespace ripple {

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kF32: return "f32";
    case Precision::kBf16: return "bf16";
    case Precision::kInt8: return "int8";
  }
  return "?";
}

Precision parse_precision(const std::string& name) {
  if (name == "f32") return Precision::kF32;
  if (name == "bf16") return Precision::kBf16;
  if (name == "int8") return Precision::kInt8;
  throw check_error("unknown precision '" + name +
                    "' (expected f32|bf16|int8)");
}

const std::vector<std::string>& precision_choices() {
  static const std::vector<std::string> choices = {"f32", "bf16", "int8"};
  return choices;
}

namespace {
std::atomic<Precision> g_precision{Precision::kF32};
}  // namespace

const char* apply_precision_flag(const Flags& flags) {
  set_precision(parse_precision(
      flags.get_choice("precision", precision_choices(), "f32")));
  return precision_name(active_precision());
}

void set_precision(Precision p) {
  g_precision.store(p, std::memory_order_release);
}

Precision active_precision() {
  return g_precision.load(std::memory_order_acquire);
}

float int8_scale(const float* w, std::size_t n) {
  float max_abs = 0.0f;
  for (std::size_t i = 0; i < n; ++i) {
    RIPPLE_CHECK_MSG(std::isfinite(w[i]),
                     "int8 packing requires finite weights (got " << w[i]
                                                                  << ')');
    const float a = std::fabs(w[i]);
    if (a > max_abs) max_abs = a;
  }
  return max_abs / 127.0f;
}

std::int8_t int8_quantize(float x, float scale) {
  if (scale == 0.0f) return 0;
  // lrintf honors the current rounding mode — round-to-nearest-even by
  // default, matching the bf16 narrowing and IEEE arithmetic.
  long q = std::lrintf(x / scale);
  if (q > 127) q = 127;
  if (q < -127) q = -127;
  return static_cast<std::int8_t>(q);
}

}  // namespace ripple
