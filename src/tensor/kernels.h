// SIMD-dispatched tensor kernel subsystem.
//
// Every hot path in the system — RippleEngine's shard apply, hop_kernel's
// per-vertex Δh GEMVs, the dist engines' recompute, and the serving loop —
// bottoms out in a handful of dense kernels. This subsystem provides those
// kernels in four tiers selected ONCE at startup by runtime CPU-feature
// detection:
//
//   AVX-512 (simd_avx512.cpp, compiled with -mavx512f; taken when the CPU
//           reports AVX512F)
//   AVX2  (simd_avx2.cpp, compiled with -mavx2; taken when the CPU
//          reports AVX2)
//   SSE2  (simd_sse2.cpp; the x86-64 baseline)
//   scalar (simd_scalar.cpp; portable C++, every platform)
//
// The selection is overridable with --kernels=auto|scalar (threaded through
// Flags by the benches/examples, exactly like --scheduler) and forceable at
// build time with -DRIPPLE_KERNELS=scalar (ci.sh runs a forced-scalar unit
// tier so the portable path stays tested on SIMD hosts).
//
// Bit-exactness contract
// ----------------------
// Every tier computes every output element with the SAME accumulation
// order and WITHOUT fused multiply-add:
//   * GEMM/GEMV outputs: c[i][j] = ((init + a[i][0]·b[0][j]) + a[i][1]·
//     b[1][j]) + ... — ascending k, one rounding per multiply and per add.
//     SIMD tiers vectorize across the OUTPUT COLUMN axis only, so lanes
//     hold different output elements and no element's chain is reordered.
//   * Elementwise ops (add/sub/axpy/scale/relu) are trivially order-free.
//   * vec_dot reduces ALONG the vector, so a canonical 8-lane-split order
//     is specified (see vec_dot below) and implemented identically by all
//     three tiers.
// Kernel TUs are built with -ffp-contract=off so the scalar tier cannot be
// FMA-contracted out from under the contract on -march=native builds.
// Consequence: --kernels=scalar and --kernels=auto produce bit-identical
// embeddings (property-tested across engines × shards × parts × scheduler
// × transport), and all pre-existing zero-tolerance exactness suites hold
// unchanged.
//
// NaN/Inf: kernels do NOT skip zero multiplicands (0·NaN must stay NaN),
// so IEEE special values propagate exactly as a naive loop would. relu is
// specified as (x > 0 ? x : +0), which maps -0 and NaN to +0 in every tier
// (this is what vmaxps(x, 0) computes). One carve-out: when several NaN /
// invalid-op operands combine, WHICH NaN (payload and sign) survives is
// selected by hardware operand order — which the compiler may commute in
// the scalar tier — so the cross-tier contract covers NaN-ness, not NaN
// payload bits. ±0, denormals, and infinities are exact.
//
// Reduced precision (tensor/precision.h): PackedMatrix can also hold bf16
// or int8 panels. The *_bf16 / *_int8 table entries dequantize the weight
// per element and accumulate in f32 over the SAME ascending-k chains, so
// for a FIXED precision every tier is still bit-identical; only the f32
// REFERENCE is approximated (bounded by the accuracy-budget suite).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "tensor/matrix.h"
#include "tensor/precision.h"

namespace ripple {

// Instruction-set tier of a kernel table.
enum class KernelIsa { kScalar, kSse2, kAvx2, kAvx512 };

const char* kernel_isa_name(KernelIsa isa);

// Startup policy, surfaced to benches/examples as --kernels=auto|scalar.
enum class KernelMode { kAuto, kScalar };

const char* kernel_mode_name(KernelMode mode);
// Parses "auto" / "scalar"; dies with a message on anything else.
KernelMode parse_kernel_mode(const std::string& name);
// The accepted --kernels values, for Flags::get_choice — the single source
// every bench/example validates against.
const std::vector<std::string>& kernel_mode_choices();

class Flags;

// Applies --kernels=auto|scalar (validated; defaults to auto) and returns
// the name of the tier that will actually execute — for a bench's config
// line / JSON output. The one entry point every bench and example uses, so
// the flag cannot drift between binaries.
const char* apply_kernel_flag(const Flags& flags);

// Immutable weight matrix repacked into cache-line panels for the GEMM /
// GEMV kernels: the columns are split into panels of kPanelWidth columns
// (16 floats = 64 bytes — one cache line, two AVX2 registers, one AVX-512
// register) and each panel stores its k rows contiguously, so the inner
// k-loop of a microkernel reads ONE sequential stream instead of striding
// by the row pitch. The last panel is zero-padded to full width; kernels
// compute the padded lanes and drop them on store, which never changes the
// bits of a real output element.
//
// A panel holds its weights at one of three storage precisions
// (tensor/precision.h): f32 (the default, 64 B/row/panel), bf16
// (32 B/row/panel, exact widening dequant), or int8 (16 B/row/panel plus
// one f32 scale per panel). The panel column layout is identical across
// formats; only the element width changes. Kernels must read the panel
// through the accessor matching precision().
//
// GNN layer weights are immutable across the stream, so GnnLayer packs each
// weight once at model load (at the active precision) and every update_row
// / update_matrix call reuses the panels (see gnn/layers.h).
class PackedMatrix {
 public:
  static constexpr std::size_t kPanelWidth = 16;

  PackedMatrix() = default;

  static PackedMatrix pack(const Matrix& w,
                           Precision precision = Precision::kF32) {
    PackedMatrix p;
    p.assign(w, precision);
    return p;
  }

  // Re-packs in place, reusing the existing buffer when large enough (the
  // per-call scratch path of the unpacked gemm()).
  void assign(const Matrix& w, Precision precision = Precision::kF32);

  Precision precision() const { return precision_; }

  std::size_t rows() const { return rows_; }  // k: the GEMM reduction depth
  std::size_t cols() const { return cols_; }  // n: real (unpadded) columns
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  std::size_t num_panels() const {
    return (cols_ + kPanelWidth - 1) / kPanelWidth;
  }
  // Panel pj covers columns [pj*kPanelWidth, min(cols, ...)); layout is
  // rows_ rows of kPanelWidth elements, 64-byte aligned. Each accessor is
  // valid only for the matching precision().
  const float* panel(std::size_t pj) const {
    return data_.data() + pj * rows_ * kPanelWidth;
  }
  const std::uint16_t* panel_bf16(std::size_t pj) const {
    return data_bf16_.data() + pj * rows_ * kPanelWidth;
  }
  const std::int8_t* panel_int8(std::size_t pj) const {
    return data_int8_.data() + pj * rows_ * kPanelWidth;
  }
  // Symmetric dequantization scale of panel pj (int8 panels only).
  float panel_scale(std::size_t pj) const { return scales_[pj]; }

  // Storage footprint of the active format (panel data + int8 scales).
  std::size_t bytes() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  Precision precision_ = Precision::kF32;
  AlignedVector data_;  // f32 panels
  std::vector<std::uint16_t, AlignedAllocator<std::uint16_t>> data_bf16_;
  std::vector<std::int8_t, AlignedAllocator<std::int8_t>> data_int8_;
  std::vector<float> scales_;  // one per panel (int8 only)
};

// One tier's kernel table. All pointers are non-null in every table.
// Size/shape validation happens in the ops.h wrappers; these take raw
// pointers and trust the caller.
struct KernelOps {
  KernelIsa isa;

  // Elementwise (dst and src may not alias):
  void (*vec_add)(float* dst, const float* src, std::size_t n);
  void (*vec_sub)(float* dst, const float* src, std::size_t n);
  void (*vec_axpy)(float* dst, float alpha, const float* src, std::size_t n);
  void (*vec_scale)(float* dst, float alpha, std::size_t n);
  // relu(x) = x > 0 ? x : +0 (maps -0 and NaN to +0; all tiers agree).
  void (*relu)(float* p, std::size_t n);

  // Canonical 8-lane dot product: partial sums s[i % 8] += a[i]·b[i], then
  // the fixed reduction (((s0+s4)+(s2+s6)) + ((s1+s5)+(s3+s7))) — the
  // natural 256→128→scalar narrowing order, mirrored exactly by the SSE2
  // and scalar tiers so the result is bit-identical across tiers (though
  // different from a naive left-to-right sum).
  float (*vec_dot)(const float* a, const float* b, std::size_t n);

  // y[j] += Σ_p x[p]·w[p·ldw + j] for j in [0, n); ascending p per column.
  void (*gemv_accum)(const float* x, std::size_t k, const float* w,
                     std::size_t ldw, float* y, std::size_t n);

  // Same result as gemv_accum, reading w from packed panels (sequential
  // panel streams instead of strided row walks). w.rows() must equal k.
  void (*gemv_accum_packed)(const float* x, std::size_t k,
                            const PackedMatrix& w, float* y);

  // C (m x n, row pitch ldc) = A (m x k, row pitch lda) · B, overwriting C.
  // B is given as packed panels (b.rows() == k, b.cols() == n). Each output
  // element is the ascending-k mul/add chain starting from 0. Row blocks
  // are independent, so parallel callers split over m.
  void (*gemm_packed)(const float* a, std::size_t m, std::size_t k,
                      std::size_t lda, const PackedMatrix& b, float* c,
                      std::size_t ldc);

  // Reduced-precision variants (w/b must be packed at the matching
  // precision). bf16: y[j] += Σ_p x[p]·widen(w[p][j]) — the dequant is an
  // exact shift, so this is the f32 chain over bf16-rounded weights. int8:
  // the integer codes accumulate through f32 as
  //   acc[j] = Σ_p x[p]·float(q[p][j]);  y[j] += scale_panel · acc[j]
  // — the panel scale is hoisted OUT of the k-loop (one chain shape in
  // every tier, and one fewer rounding per element than scaling inside).
  void (*gemv_accum_packed_bf16)(const float* x, std::size_t k,
                                 const PackedMatrix& w, float* y);
  void (*gemm_packed_bf16)(const float* a, std::size_t m, std::size_t k,
                           std::size_t lda, const PackedMatrix& b, float* c,
                           std::size_t ldc);
  void (*gemv_accum_packed_int8)(const float* x, std::size_t k,
                                 const PackedMatrix& w, float* y);
  void (*gemm_packed_int8)(const float* a, std::size_t m, std::size_t k,
                           std::size_t lda, const PackedMatrix& b, float* c,
                           std::size_t ldc);
};

// The active table. First use runs CPU detection (honoring the compile-time
// RIPPLE_KERNELS=scalar force); set_kernel_mode() re-dispatches.
const KernelOps& kernels();

// Overrides the dispatch policy (--kernels). Intended for startup / test
// setup: calling it concurrently with running kernels is safe memory-wise
// (atomic pointer swap) but makes WHICH tier a racing op uses unspecified.
void set_kernel_mode(KernelMode mode);
KernelMode kernel_mode();

KernelIsa active_kernel_isa();

// Table for one specific tier, or nullptr when this build/CPU cannot run it
// (e.g. AVX2 table on a non-AVX2 host). Test hook for the dispatched-vs-
// scalar bit-exactness suite.
const KernelOps* kernel_ops_for(KernelIsa isa);

// Every tier the current build AND host can execute (always contains
// kScalar).
std::vector<KernelIsa> available_kernel_isas();

// Accessors implemented by the per-tier TUs (internal; use kernels()).
const KernelOps* scalar_kernel_ops();
const KernelOps* sse2_kernel_ops();    // nullptr when built without SSE2
const KernelOps* avx2_kernel_ops();    // nullptr when built without -mavx2
const KernelOps* avx512_kernel_ops();  // nullptr when built without -mavx512f

}  // namespace ripple
