// AVX-512 kernel tier. This TU is compiled with -mavx512f (when the
// compiler supports it) and its table is selected only after
// __builtin_cpu_supports("avx512f") confirms the host executes AVX-512F,
// so no AVX-512 instruction can leak into an unsupported code path.
//
// Determinism: same contract as every other tier (kernels.h) —
// vectorization across the output/column axis only, separate mul+add (no
// vfmadd), scalar tails over the same per-element chains. A full 16-column
// packed panel is exactly one zmm register, so the packed kernels hold each
// output strip in a single accumulator per row.
//
// vec_dot is the one op that reduces ALONG the vector; its canonical
// 8-lane-split order is pinned to 256-bit accumulators, so this tier
// reuses the AVX2-shaped implementation (-mavx512f implies -mavx2 ISA
// availability in this TU) rather than introducing a 16-lane order that
// would break cross-tier bit-exactness.
#include "tensor/kernels.h"

#if defined(__AVX512F__)

#include <immintrin.h>

namespace ripple {
namespace {

constexpr std::size_t kW = PackedMatrix::kPanelWidth;  // one zmm register

void v_vec_add(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i),
                                            _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void v_vec_sub(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_sub_ps(_mm512_loadu_ps(dst + i),
                                            _mm512_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void v_vec_axpy(float* dst, float alpha, const float* src, std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    const __m512 prod = _mm512_mul_ps(va, _mm512_loadu_ps(src + i));
    _mm512_storeu_ps(dst + i, _mm512_add_ps(_mm512_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += alpha * src[i];
}

void v_vec_scale(float* dst, float alpha, std::size_t n) {
  const __m512 va = _mm512_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    _mm512_storeu_ps(dst + i, _mm512_mul_ps(_mm512_loadu_ps(dst + i), va));
  }
  for (; i < n; ++i) dst[i] *= alpha;
}

void v_relu(float* p, std::size_t n) {
  const __m512 zero = _mm512_setzero_ps();
  std::size_t i = 0;
  for (; i + 16 <= n; i += 16) {
    // vmaxps(x, 0): -0 and NaN lanes yield the SECOND operand (+0) — the
    // scalar tier's (x > 0 ? x : +0) exactly.
    _mm512_storeu_ps(p + i, _mm512_max_ps(_mm512_loadu_ps(p + i), zero));
  }
  for (; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

float v_vec_dot(const float* a, const float* b, std::size_t n) {
  // Canonical 8-lane split via 256-bit accumulators (see TU comment).
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  alignas(32) float s[8];
  _mm256_store_ps(s, acc);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  float t[4];
  for (std::size_t lane = 0; lane < 4; ++lane) t[lane] = s[lane] + s[lane + 4];
  return (t[0] + t[2]) + (t[1] + t[3]);
}

void v_gemv_accum(const float* x, std::size_t k, const float* w,
                  std::size_t ldw, float* y, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const __m512 xp = _mm512_set1_ps(x[p]);
    const float* wp = w + p * ldw;
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
      const __m512 prod = _mm512_mul_ps(xp, _mm512_loadu_ps(wp + j));
      _mm512_storeu_ps(y + j, _mm512_add_ps(_mm512_loadu_ps(y + j), prod));
    }
    for (; j < n; ++j) y[j] += x[p] * wp[j];
  }
}

void v_gemv_accum_packed(const float* x, std::size_t k, const PackedMatrix& w,
                         float* y) {
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = w.panel(pj);
    float* yj = y + j0;
    if (jw == kW) {
      // Full panel: the y strip is ONE zmm and the k-loop reads one
      // sequential 64-byte-per-row stream (panel rows are 64B aligned).
      __m512 acc = _mm512_loadu_ps(yj);
      for (std::size_t p = 0; p < k; ++p) {
        const __m512 xp = _mm512_set1_ps(x[p]);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(xp, _mm512_load_ps(panel + p * kW)));
      }
      _mm512_storeu_ps(yj, acc);
      continue;
    }
    for (std::size_t j = 0; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) acc += x[p] * panel[p * kW + j];
      yj[j] = acc;
    }
  }
}

// MR x 16 register-blocked microkernel: MR A rows share each packed B row
// load, one zmm accumulator per row.
template <std::size_t MR>
inline void gemm_panel_rows(const float* a, std::size_t k, std::size_t lda,
                            const float* panel, float* c, std::size_t ldc,
                            std::size_t jw) {
  __m512 acc[MR];
  for (std::size_t r = 0; r < MR; ++r) acc[r] = _mm512_setzero_ps();
  for (std::size_t p = 0; p < k; ++p) {
    const __m512 bp = _mm512_load_ps(panel + p * kW);
    for (std::size_t r = 0; r < MR; ++r) {
      const __m512 va = _mm512_set1_ps(a[r * lda + p]);
      acc[r] = _mm512_add_ps(acc[r], _mm512_mul_ps(va, bp));
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* ci = c + r * ldc;
    if (jw == kW) {
      _mm512_storeu_ps(ci, acc[r]);
    } else {
      alignas(64) float tmp[kW];
      _mm512_store_ps(tmp, acc[r]);
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
    }
  }
}

void v_gemm_packed(const float* a, std::size_t m, std::size_t k,
                   std::size_t lda, const PackedMatrix& b, float* c,
                   std::size_t ldc) {
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = b.panel(pj);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      gemm_panel_rows<4>(a + i * lda, k, lda, panel, c + i * ldc + j0, ldc,
                         jw);
    }
    for (; i < m; ++i) {
      gemm_panel_rows<1>(a + i * lda, k, lda, panel, c + i * ldc + j0, ldc,
                         jw);
    }
  }
}

// ---- reduced-precision panels (precision.h) --------------------------
// A full panel row is 16 values in every format: 32 bytes of bf16 (one
// ymm source) or 16 bytes of int8 (one xmm source), widened to one zmm.

inline __m512 bf16_widen16(const std::uint16_t* p) {
  const __m256i v16 = _mm256_load_si256(reinterpret_cast<const __m256i*>(p));
  return _mm512_castsi512_ps(
      _mm512_slli_epi32(_mm512_cvtepu16_epi32(v16), 16));
}

inline __m512 int8_widen16(const std::int8_t* p) {
  const __m128i v8 = _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  return _mm512_cvtepi32_ps(_mm512_cvtepi8_epi32(v8));
}

void v_gemv_accum_packed_bf16(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = w.panel_bf16(pj);
    float* yj = y + j0;
    if (jw == kW) {
      __m512 acc = _mm512_loadu_ps(yj);
      for (std::size_t p = 0; p < k; ++p) {
        const __m512 xp = _mm512_set1_ps(x[p]);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(xp, bf16_widen16(panel + p * kW)));
      }
      _mm512_storeu_ps(yj, acc);
      continue;
    }
    for (std::size_t j = 0; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) {
        acc += x[p] * bf16_to_f32(panel[p * kW + j]);
      }
      yj[j] = acc;
    }
  }
}

void v_gemm_packed_bf16(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = b.panel_bf16(pj);
    for (std::size_t i = 0; i < m; ++i) {
      __m512 acc = _mm512_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m512 va = _mm512_set1_ps(ai[p]);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(va, bf16_widen16(panel + p * kW)));
      }
      float* ci = c + i * ldc + j0;
      if (jw == kW) {
        _mm512_storeu_ps(ci, acc);
      } else {
        alignas(64) float tmp[kW];
        _mm512_store_ps(tmp, acc);
        for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
      }
    }
  }
}

void v_gemv_accum_packed_int8(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = w.panel_int8(pj);
    const __m512 scale = _mm512_set1_ps(w.panel_scale(pj));
    float* yj = y + j0;
    __m512 acc = _mm512_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const __m512 xp = _mm512_set1_ps(x[p]);
      acc = _mm512_add_ps(acc, _mm512_mul_ps(xp, int8_widen16(panel + p * kW)));
    }
    if (jw == kW) {
      _mm512_storeu_ps(
          yj, _mm512_add_ps(_mm512_loadu_ps(yj), _mm512_mul_ps(scale, acc)));
    } else {
      alignas(64) float tmp[kW];
      _mm512_store_ps(tmp, _mm512_mul_ps(scale, acc));
      for (std::size_t lane = 0; lane < jw; ++lane) yj[lane] += tmp[lane];
    }
  }
}

void v_gemm_packed_int8(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = b.panel_int8(pj);
    const __m512 scale = _mm512_set1_ps(b.panel_scale(pj));
    for (std::size_t i = 0; i < m; ++i) {
      __m512 acc = _mm512_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m512 va = _mm512_set1_ps(ai[p]);
        acc = _mm512_add_ps(acc, _mm512_mul_ps(va, int8_widen16(panel + p * kW)));
      }
      float* ci = c + i * ldc + j0;
      alignas(64) float tmp[kW];
      _mm512_store_ps(tmp, _mm512_mul_ps(scale, acc));
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
    }
  }
}

const KernelOps kAvx512Ops = {
    .isa = KernelIsa::kAvx512,
    .vec_add = v_vec_add,
    .vec_sub = v_vec_sub,
    .vec_axpy = v_vec_axpy,
    .vec_scale = v_vec_scale,
    .relu = v_relu,
    .vec_dot = v_vec_dot,
    .gemv_accum = v_gemv_accum,
    .gemv_accum_packed = v_gemv_accum_packed,
    .gemm_packed = v_gemm_packed,
    .gemv_accum_packed_bf16 = v_gemv_accum_packed_bf16,
    .gemm_packed_bf16 = v_gemm_packed_bf16,
    .gemv_accum_packed_int8 = v_gemv_accum_packed_int8,
    .gemm_packed_int8 = v_gemm_packed_int8,
};

}  // namespace

const KernelOps* avx512_kernel_ops() { return &kAvx512Ops; }

}  // namespace ripple

#else  // !__AVX512F__ (TU compiled without -mavx512f: tier unavailable)

namespace ripple {
const KernelOps* avx512_kernel_ops() { return nullptr; }
}  // namespace ripple

#endif
