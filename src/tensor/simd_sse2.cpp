// SSE2 kernel tier — the x86-64 baseline (every x86-64 CPU has SSE2, so
// this TU needs no special compile flags). Vectorizes across the output /
// column axis only and uses separate mul+add (no FMA), so every output
// element keeps the scalar tier's exact rounding chain (see kernels.h).
// Tails are handled with scalar loops over the same per-element chains —
// no masked loads, so the tier is sanitizer-clean by construction.
#include "tensor/kernels.h"

#if defined(__SSE2__)

#include <emmintrin.h>

namespace ripple {
namespace {

void v_vec_add(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_add_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void v_vec_sub(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i,
                  _mm_sub_ps(_mm_loadu_ps(dst + i), _mm_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void v_vec_axpy(float* dst, float alpha, const float* src, std::size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(src + i));
    _mm_storeu_ps(dst + i, _mm_add_ps(_mm_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += alpha * src[i];
}

void v_vec_scale(float* dst, float alpha, std::size_t n) {
  const __m128 va = _mm_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    _mm_storeu_ps(dst + i, _mm_mul_ps(_mm_loadu_ps(dst + i), va));
  }
  for (; i < n; ++i) dst[i] *= alpha;
}

void v_relu(float* p, std::size_t n) {
  const __m128 zero = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    // maxps(x, 0): -0 and NaN lanes yield the SECOND operand (+0), which is
    // exactly the scalar tier's (x > 0 ? x : +0).
    _mm_storeu_ps(p + i, _mm_max_ps(_mm_loadu_ps(p + i), zero));
  }
  for (; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

float v_vec_dot(const float* a, const float* b, std::size_t n) {
  // Canonical 8-lane split: lanes 0-3 in acc_lo, lanes 4-7 in acc_hi.
  __m128 acc_lo = _mm_setzero_ps();
  __m128 acc_hi = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc_lo = _mm_add_ps(acc_lo,
                        _mm_mul_ps(_mm_loadu_ps(a + i), _mm_loadu_ps(b + i)));
    acc_hi = _mm_add_ps(
        acc_hi, _mm_mul_ps(_mm_loadu_ps(a + i + 4), _mm_loadu_ps(b + i + 4)));
  }
  alignas(16) float s[8];
  _mm_store_ps(s, acc_lo);
  _mm_store_ps(s + 4, acc_hi);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  float t[4];
  for (std::size_t lane = 0; lane < 4; ++lane) t[lane] = s[lane] + s[lane + 4];
  return (t[0] + t[2]) + (t[1] + t[3]);
}

void v_gemv_accum(const float* x, std::size_t k, const float* w,
                  std::size_t ldw, float* y, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const __m128 xp = _mm_set1_ps(x[p]);
    const float* wp = w + p * ldw;
    std::size_t j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m128 prod = _mm_mul_ps(xp, _mm_loadu_ps(wp + j));
      _mm_storeu_ps(y + j, _mm_add_ps(_mm_loadu_ps(y + j), prod));
    }
    for (; j < n; ++j) y[j] += x[p] * wp[j];
  }
}

void v_gemv_accum_packed(const float* x, std::size_t k, const PackedMatrix& w,
                         float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = w.panel(pj);
    float* yj = y + j0;
    if (jw == kW) {
      // Full panel: y strip lives in registers; the k-loop reads one
      // sequential 64-byte stream.
      __m128 acc0 = _mm_loadu_ps(yj);
      __m128 acc1 = _mm_loadu_ps(yj + 4);
      __m128 acc2 = _mm_loadu_ps(yj + 8);
      __m128 acc3 = _mm_loadu_ps(yj + 12);
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 xp = _mm_set1_ps(x[p]);
        const float* bp = panel + p * kW;
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(xp, _mm_load_ps(bp)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(xp, _mm_load_ps(bp + 4)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(xp, _mm_load_ps(bp + 8)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(xp, _mm_load_ps(bp + 12)));
      }
      _mm_storeu_ps(yj, acc0);
      _mm_storeu_ps(yj + 4, acc1);
      _mm_storeu_ps(yj + 8, acc2);
      _mm_storeu_ps(yj + 12, acc3);
      continue;
    }
    std::size_t j = 0;
    for (; j + 4 <= jw; j += 4) {
      __m128 acc = _mm_loadu_ps(yj + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 xp = _mm_set1_ps(x[p]);
        acc = _mm_add_ps(acc, _mm_mul_ps(xp, _mm_loadu_ps(panel + p * kW + j)));
      }
      _mm_storeu_ps(yj + j, acc);
    }
    for (; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) acc += x[p] * panel[p * kW + j];
      yj[j] = acc;
    }
  }
}

void v_gemm_packed(const float* a, std::size_t m, std::size_t k,
                   std::size_t lda, const PackedMatrix& b, float* c,
                   std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = b.panel(pj);
    for (std::size_t i = 0; i < m; ++i) {
      __m128 acc0 = _mm_setzero_ps();
      __m128 acc1 = _mm_setzero_ps();
      __m128 acc2 = _mm_setzero_ps();
      __m128 acc3 = _mm_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 va = _mm_set1_ps(ai[p]);
        const float* bp = panel + p * kW;
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, _mm_load_ps(bp)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, _mm_load_ps(bp + 4)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(va, _mm_load_ps(bp + 8)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(va, _mm_load_ps(bp + 12)));
      }
      float* ci = c + i * ldc + j0;
      if (jw == kW) {
        _mm_storeu_ps(ci, acc0);
        _mm_storeu_ps(ci + 4, acc1);
        _mm_storeu_ps(ci + 8, acc2);
        _mm_storeu_ps(ci + 12, acc3);
      } else {
        alignas(16) float tmp[kW];
        _mm_store_ps(tmp, acc0);
        _mm_store_ps(tmp + 4, acc1);
        _mm_store_ps(tmp + 8, acc2);
        _mm_store_ps(tmp + 12, acc3);
        for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
      }
    }
  }
}

// ---- reduced-precision panels (precision.h) --------------------------
// Dequant is per-element and exact (bf16 widen is a shift; int8 codes are
// integers ≤ 127, exactly representable), so folding it into the f32 loop
// shapes keeps the per-element chains identical to the scalar reference.

// bf16 widen: (v << 16) reinterpreted as f32. unpacklo/hi with zero in the
// FIRST operand puts the zero halfword in the low 16 bits of each lane.
inline __m128 bf16_lo4(__m128i v16) {
  return _mm_castsi128_ps(_mm_unpacklo_epi16(_mm_setzero_si128(), v16));
}
inline __m128 bf16_hi4(__m128i v16) {
  return _mm_castsi128_ps(_mm_unpackhi_epi16(_mm_setzero_si128(), v16));
}

void v_gemv_accum_packed_bf16(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = w.panel_bf16(pj);
    float* yj = y + j0;
    if (jw == kW) {
      __m128 acc0 = _mm_loadu_ps(yj);
      __m128 acc1 = _mm_loadu_ps(yj + 4);
      __m128 acc2 = _mm_loadu_ps(yj + 8);
      __m128 acc3 = _mm_loadu_ps(yj + 12);
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 xp = _mm_set1_ps(x[p]);
        const std::uint16_t* bp = panel + p * kW;
        const __m128i v0 =
            _mm_load_si128(reinterpret_cast<const __m128i*>(bp));
        const __m128i v1 =
            _mm_load_si128(reinterpret_cast<const __m128i*>(bp + 8));
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(xp, bf16_lo4(v0)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(xp, bf16_hi4(v0)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(xp, bf16_lo4(v1)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(xp, bf16_hi4(v1)));
      }
      _mm_storeu_ps(yj, acc0);
      _mm_storeu_ps(yj + 4, acc1);
      _mm_storeu_ps(yj + 8, acc2);
      _mm_storeu_ps(yj + 12, acc3);
      continue;
    }
    for (std::size_t j = 0; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) {
        acc += x[p] * bf16_to_f32(panel[p * kW + j]);
      }
      yj[j] = acc;
    }
  }
}

void v_gemm_packed_bf16(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = b.panel_bf16(pj);
    for (std::size_t i = 0; i < m; ++i) {
      __m128 acc0 = _mm_setzero_ps();
      __m128 acc1 = _mm_setzero_ps();
      __m128 acc2 = _mm_setzero_ps();
      __m128 acc3 = _mm_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 va = _mm_set1_ps(ai[p]);
        const std::uint16_t* bp = panel + p * kW;
        const __m128i v0 =
            _mm_load_si128(reinterpret_cast<const __m128i*>(bp));
        const __m128i v1 =
            _mm_load_si128(reinterpret_cast<const __m128i*>(bp + 8));
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, bf16_lo4(v0)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, bf16_hi4(v0)));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(va, bf16_lo4(v1)));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(va, bf16_hi4(v1)));
      }
      float* ci = c + i * ldc + j0;
      if (jw == kW) {
        _mm_storeu_ps(ci, acc0);
        _mm_storeu_ps(ci + 4, acc1);
        _mm_storeu_ps(ci + 8, acc2);
        _mm_storeu_ps(ci + 12, acc3);
      } else {
        alignas(16) float tmp[kW];
        _mm_store_ps(tmp, acc0);
        _mm_store_ps(tmp + 4, acc1);
        _mm_store_ps(tmp + 8, acc2);
        _mm_store_ps(tmp + 12, acc3);
        for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
      }
    }
  }
}

// int8 sign-extension ladder: bytes → s16 (unpack+arithmetic shift) → s32 →
// f32. Conversion to float is exact for |code| ≤ 127.
struct Int8Lanes {
  __m128 q0, q1, q2, q3;  // lanes 0-3, 4-7, 8-11, 12-15
};

inline Int8Lanes int8_widen16(const std::int8_t* bp) {
  const __m128i v = _mm_load_si128(reinterpret_cast<const __m128i*>(bp));
  const __m128i lo16 = _mm_srai_epi16(_mm_unpacklo_epi8(v, v), 8);
  const __m128i hi16 = _mm_srai_epi16(_mm_unpackhi_epi8(v, v), 8);
  Int8Lanes out;
  out.q0 = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpacklo_epi16(lo16, lo16), 16));
  out.q1 = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpackhi_epi16(lo16, lo16), 16));
  out.q2 = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpacklo_epi16(hi16, hi16), 16));
  out.q3 = _mm_cvtepi32_ps(_mm_srai_epi32(_mm_unpackhi_epi16(hi16, hi16), 16));
  return out;
}

void v_gemv_accum_packed_int8(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = w.panel_int8(pj);
    const __m128 scale = _mm_set1_ps(w.panel_scale(pj));
    float* yj = y + j0;
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    __m128 acc2 = _mm_setzero_ps();
    __m128 acc3 = _mm_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const __m128 xp = _mm_set1_ps(x[p]);
      const Int8Lanes q = int8_widen16(panel + p * kW);
      acc0 = _mm_add_ps(acc0, _mm_mul_ps(xp, q.q0));
      acc1 = _mm_add_ps(acc1, _mm_mul_ps(xp, q.q1));
      acc2 = _mm_add_ps(acc2, _mm_mul_ps(xp, q.q2));
      acc3 = _mm_add_ps(acc3, _mm_mul_ps(xp, q.q3));
    }
    if (jw == kW) {
      _mm_storeu_ps(yj, _mm_add_ps(_mm_loadu_ps(yj),
                                   _mm_mul_ps(scale, acc0)));
      _mm_storeu_ps(yj + 4, _mm_add_ps(_mm_loadu_ps(yj + 4),
                                       _mm_mul_ps(scale, acc1)));
      _mm_storeu_ps(yj + 8, _mm_add_ps(_mm_loadu_ps(yj + 8),
                                       _mm_mul_ps(scale, acc2)));
      _mm_storeu_ps(yj + 12, _mm_add_ps(_mm_loadu_ps(yj + 12),
                                        _mm_mul_ps(scale, acc3)));
    } else {
      alignas(16) float tmp[kW];
      _mm_store_ps(tmp, _mm_mul_ps(scale, acc0));
      _mm_store_ps(tmp + 4, _mm_mul_ps(scale, acc1));
      _mm_store_ps(tmp + 8, _mm_mul_ps(scale, acc2));
      _mm_store_ps(tmp + 12, _mm_mul_ps(scale, acc3));
      for (std::size_t lane = 0; lane < jw; ++lane) yj[lane] += tmp[lane];
    }
  }
}

void v_gemm_packed_int8(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = b.panel_int8(pj);
    const __m128 scale = _mm_set1_ps(b.panel_scale(pj));
    for (std::size_t i = 0; i < m; ++i) {
      __m128 acc0 = _mm_setzero_ps();
      __m128 acc1 = _mm_setzero_ps();
      __m128 acc2 = _mm_setzero_ps();
      __m128 acc3 = _mm_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m128 va = _mm_set1_ps(ai[p]);
        const Int8Lanes q = int8_widen16(panel + p * kW);
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(va, q.q0));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(va, q.q1));
        acc2 = _mm_add_ps(acc2, _mm_mul_ps(va, q.q2));
        acc3 = _mm_add_ps(acc3, _mm_mul_ps(va, q.q3));
      }
      float* ci = c + i * ldc + j0;
      alignas(16) float tmp[kW];
      _mm_store_ps(tmp, _mm_mul_ps(scale, acc0));
      _mm_store_ps(tmp + 4, _mm_mul_ps(scale, acc1));
      _mm_store_ps(tmp + 8, _mm_mul_ps(scale, acc2));
      _mm_store_ps(tmp + 12, _mm_mul_ps(scale, acc3));
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
    }
  }
}

const KernelOps kSse2Ops = {
    .isa = KernelIsa::kSse2,
    .vec_add = v_vec_add,
    .vec_sub = v_vec_sub,
    .vec_axpy = v_vec_axpy,
    .vec_scale = v_vec_scale,
    .relu = v_relu,
    .vec_dot = v_vec_dot,
    .gemv_accum = v_gemv_accum,
    .gemv_accum_packed = v_gemv_accum_packed,
    .gemm_packed = v_gemm_packed,
    .gemv_accum_packed_bf16 = v_gemv_accum_packed_bf16,
    .gemm_packed_bf16 = v_gemm_packed_bf16,
    .gemv_accum_packed_int8 = v_gemv_accum_packed_int8,
    .gemm_packed_int8 = v_gemm_packed_int8,
};

}  // namespace

const KernelOps* sse2_kernel_ops() { return &kSse2Ops; }

}  // namespace ripple

#else  // !__SSE2__

namespace ripple {
const KernelOps* sse2_kernel_ops() { return nullptr; }
}  // namespace ripple

#endif
