// AVX2 kernel tier. This TU is compiled with -mavx2 (when the compiler
// supports it) and its table is selected only after __builtin_cpu_supports
// confirms the host executes AVX2, so no AVX instruction can leak into a
// non-AVX code path.
//
// Determinism: vectorization runs across the output/column axis only, and
// all products use separate mul+add intrinsics — NOT vfmadd — so every
// output element carries the scalar tier's exact rounding chain (the
// contract in kernels.h). The deliberate cost of skipping FMA is one extra
// rounding per product, which is what buys bit-exact --kernels=scalar
// equivalence; throughput still improves ~4-8x over scalar because these
// kernels are memory/issue bound, not latency bound.
//
// Tails are handled with scalar loops over the same per-element chains —
// no masked loads/stores, so the tier is sanitizer-clean by construction.
#include "tensor/kernels.h"

#if defined(__AVX2__)

#include <immintrin.h>

namespace ripple {
namespace {

void v_vec_add(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] += src[i];
}

void v_vec_sub(float* dst, const float* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        dst + i, _mm256_sub_ps(_mm256_loadu_ps(dst + i),
                               _mm256_loadu_ps(src + i)));
  }
  for (; i < n; ++i) dst[i] -= src[i];
}

void v_vec_axpy(float* dst, float alpha, const float* src, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(src + i));
    _mm256_storeu_ps(dst + i, _mm256_add_ps(_mm256_loadu_ps(dst + i), prod));
  }
  for (; i < n; ++i) dst[i] += alpha * src[i];
}

void v_vec_scale(float* dst, float alpha, std::size_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(dst + i, _mm256_mul_ps(_mm256_loadu_ps(dst + i), va));
  }
  for (; i < n; ++i) dst[i] *= alpha;
}

void v_relu(float* p, std::size_t n) {
  const __m256 zero = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // vmaxps(x, 0): -0 and NaN lanes yield the SECOND operand (+0) — the
    // scalar tier's (x > 0 ? x : +0) exactly.
    _mm256_storeu_ps(p + i, _mm256_max_ps(_mm256_loadu_ps(p + i), zero));
  }
  for (; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

float v_vec_dot(const float* a, const float* b, std::size_t n) {
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(
        acc, _mm256_mul_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i)));
  }
  // Canonical finish (kernels.h): spill the 8 lane sums, accumulate the
  // tail scalar into lanes i%8, then the fixed 8→4→scalar narrowing.
  alignas(32) float s[8];
  _mm256_store_ps(s, acc);
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  float t[4];
  for (std::size_t lane = 0; lane < 4; ++lane) t[lane] = s[lane] + s[lane + 4];
  return (t[0] + t[2]) + (t[1] + t[3]);
}

void v_gemv_accum(const float* x, std::size_t k, const float* w,
                  std::size_t ldw, float* y, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const __m256 xp = _mm256_set1_ps(x[p]);
    const float* wp = w + p * ldw;
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8) {
      const __m256 prod = _mm256_mul_ps(xp, _mm256_loadu_ps(wp + j));
      _mm256_storeu_ps(y + j, _mm256_add_ps(_mm256_loadu_ps(y + j), prod));
    }
    for (; j < n; ++j) y[j] += x[p] * wp[j];
  }
}

void v_gemv_accum_packed(const float* x, std::size_t k, const PackedMatrix& w,
                         float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = w.panel(pj);
    float* yj = y + j0;
    if (jw == kW) {
      // Full panel: the y strip lives in two registers and the k-loop reads
      // one sequential 64-byte-per-row stream (the whole point of packing).
      __m256 acc0 = _mm256_loadu_ps(yj);
      __m256 acc1 = _mm256_loadu_ps(yj + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 xp = _mm256_set1_ps(x[p]);
        const float* bp = panel + p * kW;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(xp, _mm256_load_ps(bp)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(xp, _mm256_load_ps(bp + 8)));
      }
      _mm256_storeu_ps(yj, acc0);
      _mm256_storeu_ps(yj + 8, acc1);
      continue;
    }
    std::size_t j = 0;
    for (; j + 8 <= jw; j += 8) {
      __m256 acc = _mm256_loadu_ps(yj + j);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 xp = _mm256_set1_ps(x[p]);
        acc = _mm256_add_ps(acc,
                            _mm256_mul_ps(xp, _mm256_loadu_ps(panel + p * kW + j)));
      }
      _mm256_storeu_ps(yj + j, acc);
    }
    for (; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) acc += x[p] * panel[p * kW + j];
      yj[j] = acc;
    }
  }
}

// 4x16 register-blocked microkernel: four A rows share each packed B row
// load, and each row's 16 output columns stay in two accumulators.
template <std::size_t MR>
inline void gemm_panel_rows(const float* a, std::size_t k, std::size_t lda,
                            const float* panel, float* c, std::size_t ldc,
                            std::size_t jw) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  __m256 acc[MR][2];
  for (std::size_t r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (std::size_t p = 0; p < k; ++p) {
    const __m256 b0 = _mm256_load_ps(panel + p * kW);
    const __m256 b1 = _mm256_load_ps(panel + p * kW + 8);
    for (std::size_t r = 0; r < MR; ++r) {
      const __m256 va = _mm256_set1_ps(a[r * lda + p]);
      acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(va, b0));
      acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(va, b1));
    }
  }
  for (std::size_t r = 0; r < MR; ++r) {
    float* ci = c + r * ldc;
    if (jw == kW) {
      _mm256_storeu_ps(ci, acc[r][0]);
      _mm256_storeu_ps(ci + 8, acc[r][1]);
    } else {
      alignas(32) float tmp[kW];
      _mm256_store_ps(tmp, acc[r][0]);
      _mm256_store_ps(tmp + 8, acc[r][1]);
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
    }
  }
}

void v_gemm_packed(const float* a, std::size_t m, std::size_t k,
                   std::size_t lda, const PackedMatrix& b, float* c,
                   std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = b.panel(pj);
    std::size_t i = 0;
    for (; i + 4 <= m; i += 4) {
      gemm_panel_rows<4>(a + i * lda, k, lda, panel, c + i * ldc + j0, ldc,
                         jw);
    }
    for (; i < m; ++i) {
      gemm_panel_rows<1>(a + i * lda, k, lda, panel, c + i * ldc + j0, ldc,
                         jw);
    }
  }
}

// ---- reduced-precision panels (precision.h) --------------------------
// Per-element exact dequant folded into the f32 loop shapes; chains stay
// identical to the scalar reference at a fixed precision.

// 8 bf16 values -> 8 f32: zero-extend the halfwords and shift into the
// high 16 bits (exact widening).
inline __m256 bf16_widen8(const std::uint16_t* p) {
  const __m128i v16 = _mm_load_si128(reinterpret_cast<const __m128i*>(p));
  return _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_cvtepu16_epi32(v16), 16));
}

// 8 int8 codes -> 8 f32 (exact for |code| <= 127).
inline __m256 int8_widen8(const std::int8_t* p) {
  const __m128i v8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(p));
  return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(v8));
}

void v_gemv_accum_packed_bf16(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = w.panel_bf16(pj);
    float* yj = y + j0;
    if (jw == kW) {
      __m256 acc0 = _mm256_loadu_ps(yj);
      __m256 acc1 = _mm256_loadu_ps(yj + 8);
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 xp = _mm256_set1_ps(x[p]);
        const std::uint16_t* bp = panel + p * kW;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(xp, bf16_widen8(bp)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(xp, bf16_widen8(bp + 8)));
      }
      _mm256_storeu_ps(yj, acc0);
      _mm256_storeu_ps(yj + 8, acc1);
      continue;
    }
    for (std::size_t j = 0; j < jw; ++j) {
      float acc = yj[j];
      for (std::size_t p = 0; p < k; ++p) {
        acc += x[p] * bf16_to_f32(panel[p * kW + j]);
      }
      yj[j] = acc;
    }
  }
}

void v_gemm_packed_bf16(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = b.panel_bf16(pj);
    for (std::size_t i = 0; i < m; ++i) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 va = _mm256_set1_ps(ai[p]);
        const std::uint16_t* bp = panel + p * kW;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, bf16_widen8(bp)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, bf16_widen8(bp + 8)));
      }
      float* ci = c + i * ldc + j0;
      if (jw == kW) {
        _mm256_storeu_ps(ci, acc0);
        _mm256_storeu_ps(ci + 8, acc1);
      } else {
        alignas(32) float tmp[kW];
        _mm256_store_ps(tmp, acc0);
        _mm256_store_ps(tmp + 8, acc1);
        for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
      }
    }
  }
}

void v_gemv_accum_packed_int8(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = w.panel_int8(pj);
    const __m256 scale = _mm256_set1_ps(w.panel_scale(pj));
    float* yj = y + j0;
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    for (std::size_t p = 0; p < k; ++p) {
      const __m256 xp = _mm256_set1_ps(x[p]);
      const std::int8_t* bp = panel + p * kW;
      acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(xp, int8_widen8(bp)));
      acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(xp, int8_widen8(bp + 8)));
    }
    if (jw == kW) {
      _mm256_storeu_ps(
          yj, _mm256_add_ps(_mm256_loadu_ps(yj), _mm256_mul_ps(scale, acc0)));
      _mm256_storeu_ps(yj + 8,
                       _mm256_add_ps(_mm256_loadu_ps(yj + 8),
                                     _mm256_mul_ps(scale, acc1)));
    } else {
      alignas(32) float tmp[kW];
      _mm256_store_ps(tmp, _mm256_mul_ps(scale, acc0));
      _mm256_store_ps(tmp + 8, _mm256_mul_ps(scale, acc1));
      for (std::size_t lane = 0; lane < jw; ++lane) yj[lane] += tmp[lane];
    }
  }
}

void v_gemm_packed_int8(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = b.panel_int8(pj);
    const __m256 scale = _mm256_set1_ps(b.panel_scale(pj));
    for (std::size_t i = 0; i < m; ++i) {
      __m256 acc0 = _mm256_setzero_ps();
      __m256 acc1 = _mm256_setzero_ps();
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const __m256 va = _mm256_set1_ps(ai[p]);
        const std::int8_t* bp = panel + p * kW;
        acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(va, int8_widen8(bp)));
        acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(va, int8_widen8(bp + 8)));
      }
      float* ci = c + i * ldc + j0;
      alignas(32) float tmp[kW];
      _mm256_store_ps(tmp, _mm256_mul_ps(scale, acc0));
      _mm256_store_ps(tmp + 8, _mm256_mul_ps(scale, acc1));
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = tmp[lane];
    }
  }
}

const KernelOps kAvx2Ops = {
    .isa = KernelIsa::kAvx2,
    .vec_add = v_vec_add,
    .vec_sub = v_vec_sub,
    .vec_axpy = v_vec_axpy,
    .vec_scale = v_vec_scale,
    .relu = v_relu,
    .vec_dot = v_vec_dot,
    .gemv_accum = v_gemv_accum,
    .gemv_accum_packed = v_gemv_accum_packed,
    .gemm_packed = v_gemm_packed,
    .gemv_accum_packed_bf16 = v_gemv_accum_packed_bf16,
    .gemm_packed_bf16 = v_gemm_packed_bf16,
    .gemv_accum_packed_int8 = v_gemv_accum_packed_int8,
    .gemm_packed_int8 = v_gemm_packed_int8,
};

}  // namespace

const KernelOps* avx2_kernel_ops() { return &kAvx2Ops; }

}  // namespace ripple

#else  // !__AVX2__ (TU compiled without -mavx2: tier unavailable)

namespace ripple {
const KernelOps* avx2_kernel_ops() { return nullptr; }
}  // namespace ripple

#endif
