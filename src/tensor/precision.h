// Reduced-precision inference tier: storage precisions for packed weight
// panels (tensor/kernels.h) and the conversion primitives they share with
// the bf16 wire codec (dist/wire_format.h).
//
// Precisions
// ----------
//   f32  — the default; bit-identical to the pre-precision-tier behavior.
//   bf16 — weights stored as bfloat16 (the top 16 bits of the f32 pattern,
//          round-to-nearest-even). Dequantization is EXACT (widen = shift),
//          so a bf16 kernel is "f32 kernel over bf16_round(w)".
//   int8 — weights stored as int8 with one symmetric scale per 16-column
//          panel (scale = max|w| / 127, values rounded to nearest-even and
//          clamped to ±127). Dequantization multiplies by the panel scale.
//
// Accumulation contract: ALL arithmetic accumulates in f32 regardless of
// storage precision — only the weight operand is narrowed. For a FIXED
// precision, every kernel tier (scalar/SSE2/AVX2/AVX-512) produces
// bit-identical outputs: each tier dequantizes per element and runs the
// same ascending-k mul/add chain as the f32 contract in kernels.h. The
// cross-tier exactness property suites therefore extend to the reduced
// precisions unchanged; what reduced precision gives up is exactness vs
// the f32 REFERENCE, which the accuracy-budget suite bounds instead
// (tests/precision/, docs/precision.md).
//
// The process-global precision mirrors the kernel-mode global: benches and
// examples thread --precision=f32|bf16|int8 through Flags exactly like
// --kernels, and GnnLayer packs weights at the precision active at
// pack/repack time.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace ripple {

// Storage precision of a packed weight panel (and the flag value).
enum class Precision { kF32, kBf16, kInt8 };

const char* precision_name(Precision p);
// Parses "f32" / "bf16" / "int8"; dies with a message on anything else.
Precision parse_precision(const std::string& name);
// The accepted --precision values, for Flags::get_choice.
const std::vector<std::string>& precision_choices();

class Flags;

// Applies --precision=f32|bf16|int8 (validated; defaults to f32) and
// returns its name for a bench's config line / JSON output. The one entry
// point every bench and example uses, next to apply_kernel_flag.
const char* apply_precision_flag(const Flags& flags);

// Process-global storage precision for weight packing. Like
// set_kernel_mode, intended for startup / test setup; GnnLayer reads it at
// pack()/repack() time, so changing it mid-stream only takes effect after
// an explicit repack.
void set_precision(Precision p);
Precision active_precision();

// ---- bf16 primitives -------------------------------------------------
// bf16 is the top half of the f32 bit pattern. Narrowing rounds to
// nearest-even on the dropped 16 bits; NaNs keep their sign/exponent and
// get the quiet bit forced so a payload-only-in-low-bits NaN cannot narrow
// to infinity (NaN-ness is preserved, payload is not — matching the
// kernel NaN contract). ±0, denormals, and infinities round exactly per
// RNE (bf16 has f32's exponent range, so no overflow surprises).

inline std::uint16_t bf16_from_f32(float x) {
  std::uint32_t bits;
  std::memcpy(&bits, &x, sizeof(bits));
  if ((bits & 0x7fffffffu) > 0x7f800000u) {        // NaN: quiet, keep sign
    return static_cast<std::uint16_t>((bits >> 16) | 0x0040u);
  }
  const std::uint32_t rounding = 0x7fffu + ((bits >> 16) & 1u);  // RNE
  return static_cast<std::uint16_t>((bits + rounding) >> 16);
}

inline float bf16_to_f32(std::uint16_t h) {
  const std::uint32_t bits = static_cast<std::uint32_t>(h) << 16;
  float x;
  std::memcpy(&x, &bits, sizeof(x));
  return x;
}

// Round-trip through bf16: the value a bf16 panel / wire row actually
// carries. Exact for values with <= 8 significand bits.
inline float bf16_round(float x) { return bf16_to_f32(bf16_from_f32(x)); }

// ---- int8 primitives -------------------------------------------------
// Symmetric per-panel quantization: scale = max|w| / 127 over the panel,
// q = clamp(round_to_nearest_even(w / scale), -127, 127). An all-zero
// panel gets scale 0 and all-zero codes (dequantizing to exact +0).
// Non-finite weights are rejected at pack time (RIPPLE_CHECK) — int8 has
// no encoding for inf/NaN and silently saturating them would corrupt
// inference; f32/bf16 panels carry them through unchanged.

// Scale for a buffer of n weights (0 when all are zero).
float int8_scale(const float* w, std::size_t n);

// Quantizes one value against a scale (scale may be 0 -> code 0).
std::int8_t int8_quantize(float x, float scale);

}  // namespace ripple
