// Portable scalar kernel tier — the reference semantics every SIMD tier
// must reproduce bit-for-bit (see the contract in kernels.h). Built with
// -ffp-contract=off so no FMA contraction can change the rounding chain.
//
// NOTE for maintainers: the loops here deliberately do NOT skip zero
// multiplicands. The old data-dependent `if (x == 0) continue` fast path
// defeated vectorization (unpredictable branch in the inner loop) and
// silently dropped IEEE special values (0·NaN must stay NaN). Profiling on
// the R-MAT streams showed near-zero density in the embedding rows, so no
// sparse path is retained.
#include "tensor/kernels.h"

namespace ripple {
namespace {

void s_vec_add(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += src[i];
}

void s_vec_sub(float* dst, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] -= src[i];
}

void s_vec_axpy(float* dst, float alpha, const float* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] += alpha * src[i];
}

void s_vec_scale(float* dst, float alpha, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] *= alpha;
}

void s_relu(float* p, std::size_t n) {
  // x > 0 ? x : +0 — exactly vmaxps(x, 0): -0 and NaN map to +0.
  for (std::size_t i = 0; i < n; ++i) p[i] = p[i] > 0.0f ? p[i] : 0.0f;
}

float s_vec_dot(const float* a, const float* b, std::size_t n) {
  // Canonical 8-lane split (kernels.h): s[i % 8] += a[i]*b[i], then the
  // fixed 8→4→scalar narrowing. Identical to what the AVX2 tier's register
  // lanes accumulate.
  float s[8] = {0, 0, 0, 0, 0, 0, 0, 0};
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    for (std::size_t lane = 0; lane < 8; ++lane) {
      s[lane] += a[i + lane] * b[i + lane];
    }
  }
  for (; i < n; ++i) s[i % 8] += a[i] * b[i];
  float t[4];
  for (std::size_t lane = 0; lane < 4; ++lane) t[lane] = s[lane] + s[lane + 4];
  return (t[0] + t[2]) + (t[1] + t[3]);
}

void s_gemv_accum(const float* x, std::size_t k, const float* w,
                  std::size_t ldw, float* y, std::size_t n) {
  for (std::size_t p = 0; p < k; ++p) {
    const float xp = x[p];
    const float* wp = w + p * ldw;
    for (std::size_t j = 0; j < n; ++j) y[j] += xp * wp[j];
  }
}

void s_gemv_accum_packed(const float* x, std::size_t k, const PackedMatrix& w,
                         float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = w.panel(pj);
    float* yj = y + j0;
    for (std::size_t p = 0; p < k; ++p) {
      const float xp = x[p];
      const float* bp = panel + p * kW;
      for (std::size_t lane = 0; lane < jw; ++lane) yj[lane] += xp * bp[lane];
    }
  }
}

void s_gemm_packed(const float* a, std::size_t m, std::size_t k,
                   std::size_t lda, const PackedMatrix& b, float* c,
                   std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const float* panel = b.panel(pj);
    for (std::size_t i = 0; i < m; ++i) {
      float acc[kW] = {0};
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        const float* bp = panel + p * kW;
        for (std::size_t lane = 0; lane < kW; ++lane) {
          acc[lane] += aip * bp[lane];
        }
      }
      float* ci = c + i * ldc + j0;
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = acc[lane];
    }
  }
}

// Reduced-precision reference kernels (precision.h): identical loop shapes
// to the f32 packed kernels with a per-element dequant folded in. These
// define the chains every SIMD tier must reproduce bit-for-bit at a fixed
// precision.

void s_gemv_accum_packed_bf16(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = w.panel_bf16(pj);
    float* yj = y + j0;
    for (std::size_t p = 0; p < k; ++p) {
      const float xp = x[p];
      const std::uint16_t* bp = panel + p * kW;
      for (std::size_t lane = 0; lane < jw; ++lane) {
        yj[lane] += xp * bf16_to_f32(bp[lane]);
      }
    }
  }
}

void s_gemm_packed_bf16(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::uint16_t* panel = b.panel_bf16(pj);
    for (std::size_t i = 0; i < m; ++i) {
      float acc[kW] = {0};
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        const std::uint16_t* bp = panel + p * kW;
        for (std::size_t lane = 0; lane < kW; ++lane) {
          acc[lane] += aip * bf16_to_f32(bp[lane]);
        }
      }
      float* ci = c + i * ldc + j0;
      for (std::size_t lane = 0; lane < jw; ++lane) ci[lane] = acc[lane];
    }
  }
}

void s_gemv_accum_packed_int8(const float* x, std::size_t k,
                              const PackedMatrix& w, float* y) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = w.cols();
  for (std::size_t pj = 0; pj < w.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = w.panel_int8(pj);
    const float scale = w.panel_scale(pj);
    float* yj = y + j0;
    // Codes accumulate scale-free; the panel scale applies ONCE at the end
    // (the hoisted-scale chain in kernels.h).
    float acc[kW] = {0};
    for (std::size_t p = 0; p < k; ++p) {
      const float xp = x[p];
      const std::int8_t* bp = panel + p * kW;
      for (std::size_t lane = 0; lane < kW; ++lane) {
        acc[lane] += xp * static_cast<float>(bp[lane]);
      }
    }
    for (std::size_t lane = 0; lane < jw; ++lane) {
      yj[lane] += scale * acc[lane];
    }
  }
}

void s_gemm_packed_int8(const float* a, std::size_t m, std::size_t k,
                        std::size_t lda, const PackedMatrix& b, float* c,
                        std::size_t ldc) {
  constexpr std::size_t kW = PackedMatrix::kPanelWidth;
  const std::size_t n = b.cols();
  for (std::size_t pj = 0; pj < b.num_panels(); ++pj) {
    const std::size_t j0 = pj * kW;
    const std::size_t jw = std::min(kW, n - j0);
    const std::int8_t* panel = b.panel_int8(pj);
    const float scale = b.panel_scale(pj);
    for (std::size_t i = 0; i < m; ++i) {
      float acc[kW] = {0};
      const float* ai = a + i * lda;
      for (std::size_t p = 0; p < k; ++p) {
        const float aip = ai[p];
        const std::int8_t* bp = panel + p * kW;
        for (std::size_t lane = 0; lane < kW; ++lane) {
          acc[lane] += aip * static_cast<float>(bp[lane]);
        }
      }
      float* ci = c + i * ldc + j0;
      for (std::size_t lane = 0; lane < jw; ++lane) {
        ci[lane] = scale * acc[lane];
      }
    }
  }
}

const KernelOps kScalarOps = {
    .isa = KernelIsa::kScalar,
    .vec_add = s_vec_add,
    .vec_sub = s_vec_sub,
    .vec_axpy = s_vec_axpy,
    .vec_scale = s_vec_scale,
    .relu = s_relu,
    .vec_dot = s_vec_dot,
    .gemv_accum = s_gemv_accum,
    .gemv_accum_packed = s_gemv_accum_packed,
    .gemm_packed = s_gemm_packed,
    .gemv_accum_packed_bf16 = s_gemv_accum_packed_bf16,
    .gemm_packed_bf16 = s_gemm_packed_bf16,
    .gemv_accum_packed_int8 = s_gemv_accum_packed_int8,
    .gemm_packed_int8 = s_gemm_packed_int8,
};

}  // namespace

const KernelOps* scalar_kernel_ops() { return &kScalarOps; }

}  // namespace ripple
