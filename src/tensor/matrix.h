// Dense row-major float32 matrix. This is the only tensor type Ripple
// needs: per-layer embedding tables are (num_vertices x dim) matrices and
// GNN weights are (in_dim x out_dim) matrices.
//
// Storage is 64-byte aligned (one cache line / a full AVX-512 lane, and a
// whole number of AVX2 lanes) so the SIMD kernel tiers (tensor/kernels.h)
// can rely on an aligned base pointer. Individual ROWS are only aligned
// when cols is a multiple of 16 floats; kernels therefore use unaligned
// loads on row views and the alignment pays off as clean cache-line
// streaming, not as an aligned-load requirement.
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <span>
#include <vector>

#include "common/check.h"

namespace ripple {

class Rng;

// Minimal stateless aligned allocator for the tensor buffers.
template <typename T, std::size_t Align = 64>
struct AlignedAllocator {
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(Align)));
  }
  void deallocate(T* p, std::size_t n) {
    ::operator delete(p, n * sizeof(T), std::align_val_t(Align));
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

// 64-byte-aligned float buffer: Matrix storage and the packed weight panels.
using AlignedVector = std::vector<float, AlignedAllocator<float>>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill_value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<float> data) {
    RIPPLE_CHECK(data.size() == rows * cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_.assign(data.begin(), data.end());
    return m;
  }

  // Xavier/Glorot-uniform initialization, used for untrained model weights.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  // Entries drawn i.i.d. uniform in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               float lo = -1.0f, float hi = 1.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    RIPPLE_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << ',' << c << ") out of (" << rows_ << ','
                               << cols_ << ')');
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    RIPPLE_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << ',' << c << ") out of (" << rows_ << ','
                               << cols_ << ')');
    return data_[r * cols_ + c];
  }

  // Unchecked row views (hot path).
  std::span<float> row(std::size_t r) {
    return std::span<float>(data_.data() + r * cols_, cols_);
  }
  std::span<const float> row(std::size_t r) const {
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  // Contract: the returned pointer is 64-byte aligned (see header comment).
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  // Reshape and fill EVERY element with fill_value (the historical
  // semantics). Keeps the existing allocation whenever capacity allows.
  void resize(std::size_t rows, std::size_t cols, float fill_value = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill_value);
  }

  // Reshape WITHOUT refilling: when the element count is unchanged the
  // buffer (allocation and values) is kept as-is; on a count change,
  // elements beyond the old count are zero and the rest carry over in flat
  // row-major order — i.e. contents are unspecified shape-wise. For kernel
  // outputs that overwrite every element (gemm/update_matrix scratch),
  // where resize()'s unconditional refill is pure waste.
  void resize_no_fill(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    if (data_.size() != rows * cols) data_.resize(rows * cols);
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Memory footprint in bytes (used by the memory-overhead reports).
  std::size_t bytes() const { return data_.size() * sizeof(float); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  AlignedVector data_;
};

}  // namespace ripple
