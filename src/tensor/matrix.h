// Dense row-major float32 matrix. This is the only tensor type Ripple
// needs: per-layer embedding tables are (num_vertices x dim) matrices and
// GNN weights are (in_dim x out_dim) matrices.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"

namespace ripple {

class Rng;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, float fill_value = 0.0f)
      : rows_(rows), cols_(cols), data_(rows * cols, fill_value) {}

  static Matrix from_rows(std::size_t rows, std::size_t cols,
                          std::vector<float> data) {
    RIPPLE_CHECK(data.size() == rows * cols);
    Matrix m;
    m.rows_ = rows;
    m.cols_ = cols;
    m.data_ = std::move(data);
    return m;
  }

  // Xavier/Glorot-uniform initialization, used for untrained model weights.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  // Entries drawn i.i.d. uniform in [lo, hi).
  static Matrix random_uniform(std::size_t rows, std::size_t cols, Rng& rng,
                               float lo = -1.0f, float hi = 1.0f);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  float& at(std::size_t r, std::size_t c) {
    RIPPLE_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << ',' << c << ") out of (" << rows_ << ','
                               << cols_ << ')');
    return data_[r * cols_ + c];
  }
  float at(std::size_t r, std::size_t c) const {
    RIPPLE_CHECK_MSG(r < rows_ && c < cols_,
                     "index (" << r << ',' << c << ") out of (" << rows_ << ','
                               << cols_ << ')');
    return data_[r * cols_ + c];
  }

  // Unchecked row views (hot path).
  std::span<float> row(std::size_t r) {
    return std::span<float>(data_.data() + r * cols_, cols_);
  }
  std::span<const float> row(std::size_t r) const {
    return std::span<const float>(data_.data() + r * cols_, cols_);
  }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  void fill(float value) { std::fill(data_.begin(), data_.end(), value); }

  void resize(std::size_t rows, std::size_t cols, float fill_value = 0.0f) {
    rows_ = rows;
    cols_ = cols;
    data_.assign(rows * cols, fill_value);
  }

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  // Memory footprint in bytes (used by the memory-overhead reports).
  std::size_t bytes() const { return data_.size() * sizeof(float); }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<float> data_;
};

}  // namespace ripple
