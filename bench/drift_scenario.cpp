// Drifting-hot-region scenario: static partitioning vs online migration
// (docs/repartition.md).
//
// The stream (bench/drift_rmat.h) concentrates updates on a hot vertex
// window that shifts every K batches. The STATIC policy keeps the load-time
// LDG+refine partition for the whole run; the MIGRATE policy accumulates
// per-rank busy evidence (DistBatchResult::busy_share_sec, exponentially
// decayed so stale windows fade) into a SkewSignal and executes the skew
// detector's plan between batches. Both runs compute BIT-IDENTICAL
// embeddings (tests/dist/test_dist_migration.cpp); this bench records what
// the exactness costs bought:
//   - modeled makespan (Σ per-batch total_sec): migration re-balances the
//     hot window across compute and un-cuts its fresh edges, so the
//     per-hop max and the exchange traffic both shrink;
//   - peak max-rank memory_bytes(): the static run's halo grows with its
//     ever-increasing cut (the add-heavy stream keeps wiring the hot window
//     across the old boundary), while migration un-cuts those edges and the
//     HaloCache trailing trim releases the freed slots; swap-backfilled
//     plans (MigrationOptions::swap_backfill) plus the two-pass rehome keep
//     every rank's owned-row count flat, so churn adds no store high-water.
// --json emits one row per policy for bench/record_bench.sh.
#include "dist_util.h"
#include "drift_rmat.h"

using namespace ripple;

#if !RIPPLE_HAS_DIST
int main() {
  std::printf("drift_scenario: the distributed runtime (src/dist) is not "
              "built yet; see ROADMAP.md open items.\n");
  return 0;
}
#else
namespace {

struct PolicyMetrics {
  std::string policy;
  double makespan_sec = 0;
  double comm_sec = 0;
  std::size_t wire_bytes = 0;
  std::size_t wire_messages = 0;
  std::size_t peak_rank_memory_bytes = 0;
  std::size_t final_rank_memory_bytes = 0;
  std::size_t moves = 0;
  std::size_t migrations = 0;  // nonempty migration supersteps
  double busy_imbalance = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  const bool quick = flags.has("quick");
  const bool json = flags.has("json");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto parts =
      static_cast<std::size_t>(flags.get_int("partitions", 4));
  MigrationOptions options;
  options.hot_factor = flags.get_double("hot-factor", 1.0);
  options.max_moves =
      static_cast<std::size_t>(flags.get_int("max-moves", quick ? 32 : 64));
  options.capacity_slack = flags.get_double("capacity-slack", 1.3);
  options.swap_backfill = !flags.has("no-swap-backfill");
  const double decay = flags.get_double("signal-decay", 0.5);
  // Modeled makespan still carries each batch's MEASURED compute term, so a
  // scheduler hiccup can inflate one run; min-of-N is the standard
  // noise-robust estimator (graph state, moves and memory are deterministic
  // and identical across repeats).
  const int repeats = static_cast<int>(flags.get_int("repeats", quick ? 1 : 3));
  set_log_level(log_level::warn);
  set_transport_options(TransportOptions::from_flags(flags));

  bench::DriftConfig dc;
  dc.num_vertices =
      static_cast<std::size_t>(flags.get_int("vertices", quick ? 512 : 2048));
  dc.base_edges = dc.num_vertices * static_cast<std::size_t>(flags.get_int(
                                        "base-degree", quick ? 4 : 1));
  dc.window = dc.num_vertices / (2 * parts);
  dc.num_windows =
      static_cast<std::size_t>(flags.get_int("windows", quick ? 3 : 10));
  dc.batches_per_window = static_cast<std::size_t>(
      flags.get_int("batches-per-window", quick ? 2 : 3));
  dc.batch_size =
      static_cast<std::size_t>(flags.get_int("batch-size", quick ? 48 : 96));
  dc.seed = seed;
  const auto scenario = bench::make_drift_scenario(dc);
  const auto batches = make_batches(scenario.stream, dc.batch_size);

  Rng feat_rng(seed + 1);
  Matrix features(scenario.num_vertices, dc.feat_dim);
  for (std::size_t r = 0; r < scenario.num_vertices; ++r) {
    for (auto& v : features.row(r)) v = feat_rng.next_float(-1.0f, 1.0f);
  }
  const auto config = workload_config(Workload::gs_s, dc.feat_dim, 16, 2, 16);
  const auto model = GnnModel::random(config, seed + 2);

  if (!json) {
    bench::print_header(
        "Drifting hot region: static partition vs online migration");
    std::printf("n=%zu m=%zu, %zu parts, window %zu x %zu shifts, "
                "%zu batches of %zu\n",
                scenario.num_vertices, scenario.snapshot.num_edges(), parts,
                dc.window, dc.num_windows, batches.size(), dc.batch_size);
  }

  const auto run_policy = [&](bool migrate) {
    PolicyMetrics m;
    m.policy = migrate ? "migrate" : "static";
    const auto partition = bench::make_partition(scenario.snapshot, parts);
    auto engine = make_dist_engine(
        "ripple", model, scenario.snapshot, features, partition, nullptr,
        default_transport_options());
    SkewSignal signal;
    for (const auto& batch : batches) {
      const DistBatchResult result = engine->apply_batch(batch);
      m.makespan_sec += result.total_sec();
      m.comm_sec += result.comm_sec;
      m.wire_bytes += result.wire_bytes;
      m.wire_messages += result.wire_messages;
      m.peak_rank_memory_bytes =
          std::max(m.peak_rank_memory_bytes, engine->memory_bytes());
      if (flags.has("trace")) {
        std::printf("TRACE %s mem=%zu cut=%zu\n", m.policy.c_str(),
                    engine->memory_bytes(),
                    engine->partition().edge_cut(engine->graph()));
      }
      for (double& v : signal.busy_sec) v *= decay;  // stale windows fade
      for (std::size_t p = 0; p < result.num_parts; ++p) {
        signal.accumulate(p, result.busy_share_sec(p));
      }
      if (migrate) {
        const std::size_t executed = engine->migrate(propose_migration(
            engine->graph(), engine->partition(), signal, options));
        m.moves += executed;
        m.migrations += executed > 0 ? 1 : 0;
      }
    }
    m.final_rank_memory_bytes = engine->memory_bytes();
    m.busy_imbalance = signal.imbalance(parts);
    return m;
  };

  const auto run_best = [&](bool migrate) {
    PolicyMetrics best = run_policy(migrate);
    for (int r = 1; r < repeats; ++r) {
      const PolicyMetrics m = run_policy(migrate);
      if (m.makespan_sec < best.makespan_sec) {
        best.makespan_sec = m.makespan_sec;
        best.comm_sec = m.comm_sec;
      }
    }
    return best;
  };
  const PolicyMetrics st = run_best(false);
  const PolicyMetrics mg = run_best(true);

  if (json) {
    for (const auto* m : {&st, &mg}) {
      std::printf(
          "{\"bench\":\"drift_scenario\",\"policy\":\"%s\",\"parts\":%zu,"
          "\"num_vertices\":%zu,\"windows\":%zu,\"batches\":%zu,"
          "\"batch_size\":%zu,\"makespan_sec\":%.6g,\"comm_sec\":%.6g,"
          "\"wire_bytes\":%zu,\"wire_messages\":%zu,"
          "\"peak_rank_memory_bytes\":%zu,\"final_rank_memory_bytes\":%zu,"
          "\"moves\":%zu,\"migrations\":%zu}\n",
          m->policy.c_str(), parts, scenario.num_vertices, dc.num_windows,
          batches.size(), dc.batch_size, m->makespan_sec, m->comm_sec,
          m->wire_bytes, m->wire_messages, m->peak_rank_memory_bytes,
          m->final_rank_memory_bytes, m->moves, m->migrations);
    }
    std::fflush(stdout);
    return 0;
  }

  TextTable table({"Policy", "Makespan (s)", "Comm (s)", "Wire bytes",
                   "Messages", "Peak rank mem", "Final rank mem", "Moves"});
  for (const auto* m : {&st, &mg}) {
    table.add_row({m->policy,
                   TextTable::fmt(m->makespan_sec, 4),
                   TextTable::fmt(m->comm_sec, 4),
                   TextTable::fmt_si(static_cast<double>(m->wire_bytes)),
                   TextTable::fmt_int(static_cast<std::int64_t>(
                       m->wire_messages)),
                   TextTable::fmt_si(
                       static_cast<double>(m->peak_rank_memory_bytes)),
                   TextTable::fmt_si(
                       static_cast<double>(m->final_rank_memory_bytes)),
                   TextTable::fmt_int(static_cast<std::int64_t>(m->moves))});
  }
  table.print();
  std::printf(
      "\nmigrate/static: makespan %.2fx, peak rank memory %.2fx "
      "(%zu moves over %zu supersteps; embeddings bit-identical)\n",
      st.makespan_sec > 0 ? mg.makespan_sec / st.makespan_sec : 0.0,
      st.peak_rank_memory_bytes > 0
          ? static_cast<double>(mg.peak_rank_memory_bytes) /
                static_cast<double>(st.peak_rank_memory_bytes)
          : 0.0,
      mg.moves, mg.migrations);
  return 0;
}
#endif  // RIPPLE_HAS_DIST
