// Fig. 12: distributed scaling on the Papers analogue (the graph that does
// not fit one machine at paper scale).
//   (a) throughput + median latency, 8 partitions, GC-S and GC-M 3-layer,
//       batch sizes {10, 100, 1000}, RC vs Ripple;
//   (b) strong scaling of GC-S-3L across partition counts;
//   (c) compute vs communication split at batch size 1000.
//
// Expected shape: Ripple up to ~30x RC throughput; Ripple scales with
// partitions while RC does not (its communication dominates and barely
// shrinks); Ripple's comm time ~70x below RC's.
#include "dist_util.h"

using namespace ripple;

#if !RIPPLE_HAS_DIST
int main() {
  std::printf("fig12: the distributed runtime (src/dist) is not built yet; "
              "see ROADMAP.md open items.\n");
  return 0;
}
#else
int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  // --json: emit ONLY machine-readable rows for the scaling sweep (one per
  // partition count x engine, including the per-rank footprint) — the
  // format bench/record_bench.sh scrapes into the committed trajectory.
  const bool json = flags.has("json");
  const double scale = flags.get_double("scale", quick ? 0.03 : 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_sizes =
      flags.get_int_list("batch-sizes", quick
                                            ? std::vector<std::int64_t>{10, 100}
                                            : std::vector<std::int64_t>{10, 100, 1000});
  auto part_counts = flags.get_int_list(
      "partitions", quick ? std::vector<std::int64_t>{4, 8}
                          : std::vector<std::int64_t>{4, 8, 16});
  set_log_level(log_level::warn);
  set_transport_options(TransportOptions::from_flags(flags));
  const auto run_spec = bench::RunSpec::from_flags(flags);
  bench::apply_tcp_run_policy(run_spec, part_counts);

  if (!json) {
    bench::print_header("Fig. 12: distributed Ripple vs RC on Papers analogue");
  }
  const auto prepared = bench::prepare("papers-s", scale, quick ? 800 : 4000,
                                       seed);
  const auto& ds = prepared.dataset;
  if (!json) {
    std::printf("n=%zu m=%zu avg in-deg %.1f\n", ds.graph.num_vertices(),
                ds.graph.num_edges(), ds.graph.avg_in_degree());
  }

  // ---- (a) 8 partitions, GC-S / GC-M, throughput + latency ----
  const std::size_t parts_a = run_spec.is_tcp()
                                  ? run_spec.world_size()
                                  : (quick ? 4 : 8);
  const auto partition_a = bench::make_partition(ds.graph, parts_a);
  if (!json) {
    std::printf(
        "\n(a) %zu partitions, --mode=%s (LDG+refine cut: %zu of %zu edges)\n",
        parts_a, run_spec.mode_name(), partition_a.edge_cut(ds.graph),
        ds.graph.num_edges());
  }
  for (Workload workload : json ? std::initializer_list<Workload>{}
                                : std::initializer_list<Workload>{
                                      Workload::gc_s, Workload::gc_m}) {
    const auto config =
        workload_config(workload, ds.spec.feat_dim, ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);
    TextTable table({"Batch", "RC up/s", "Ripple up/s", "Ripple/RC",
                     "RC med lat (s)", "Ripple med lat (s)"});
    for (const auto batch_size : batch_sizes) {
      const auto bs = static_cast<std::size_t>(batch_size);
      const std::size_t num_batches = bench::batches_for(bs, quick ? 200 : 2000);
      auto rc = make_dist_engine(
          "rc", model, ds.graph, ds.features, partition_a, nullptr,
          bench::make_transport(run_spec, parts_a), SchedulerMode::kSteal,
          run_spec.mode);
      const auto rc_run =
          bench::run_dist_stream(*rc, prepared.stream, bs, num_batches);
      auto rp = make_dist_engine(
          "ripple", model, ds.graph, ds.features, partition_a, nullptr,
          bench::make_transport(run_spec, parts_a), SchedulerMode::kSteal,
          run_spec.mode);
      const auto rp_run =
          bench::run_dist_stream(*rp, prepared.stream, bs, num_batches);
      table.add_row(
          {TextTable::fmt_int(batch_size),
           TextTable::fmt_si(rc_run.throughput_ups),
           TextTable::fmt_si(rp_run.throughput_ups),
           rc_run.throughput_ups > 0
               ? TextTable::fmt(rp_run.throughput_ups / rc_run.throughput_ups,
                                1) + "x"
               : "-",
           TextTable::fmt(rc_run.median_latency_sec, 4),
           TextTable::fmt(rp_run.median_latency_sec, 4)});
    }
    std::printf("\nworkload %s (3 layers)\n", workload_name(workload));
    table.print();
  }

  // ---- (b)+(c) strong scaling and compute/comm split, GC-S-3L, bs=1k ----
  const auto config =
      workload_config(Workload::gc_s, ds.spec.feat_dim, ds.spec.num_classes,
                      3, 64);
  const auto model = GnnModel::random(config, seed);
  const std::size_t bs_scaling =
      static_cast<std::size_t>(batch_sizes.back());
  if (!json) {
    std::printf(
        "\n(b)+(c) strong scaling, GC-S-3L, batch size %zu, --mode=%s "
        "(%s comm)\n",
        bs_scaling, run_spec.mode_name(),
        run_spec.is_tcp() ? "measured" : "modeled");
  }
  // Stall columns: BSP shows the worst rank's barrier waits, async shows
  // the worst rank's poll-loop idle — the quantity the barrier-free epoch
  // exists to shrink (docs/async.md).
  // "Balance" is the structural vertex-count balance of the partition;
  // "busy skew" is the worst rank's accumulated busy share over the ideal
  // (1.00 == perfectly even load) — the skew detector's trigger quantity.
  TextTable table({"Parts", "Edge cut", "Balance", "RC up/s", "Ripple up/s",
                   "RC comp (s)", "RC comm (s)", "RP comp (s)", "RP comm (s)",
                   "RC stall (s)", "RP stall (s)", "RC bytes", "RP bytes",
                   "Comm ratio", "RC rank mem", "RP rank mem",
                   "RC busy skew", "RP busy skew"});
  for (const auto parts : part_counts) {
    const auto partition =
        bench::make_partition(ds.graph, static_cast<std::size_t>(parts));
    const std::size_t num_batches = quick ? 2 : 4;
    auto rc = make_dist_engine(
        "rc", model, ds.graph, ds.features, partition, nullptr,
        bench::make_transport(run_spec, static_cast<std::size_t>(parts)),
        SchedulerMode::kSteal, run_spec.mode);
    const auto rc_run =
        bench::run_dist_stream(*rc, prepared.stream, bs_scaling, num_batches);
    auto rp = make_dist_engine(
        "ripple", model, ds.graph, ds.features, partition, nullptr,
        bench::make_transport(run_spec, static_cast<std::size_t>(parts)),
        SchedulerMode::kSteal, run_spec.mode);
    const auto rp_run =
        bench::run_dist_stream(*rp, prepared.stream, bs_scaling, num_batches);
    if (json) {
      for (const auto* run : {&rc_run, &rp_run}) {
        std::printf(
            "{\"bench\":\"fig12_dist\",\"dataset\":\"papers-s\","
            "\"engine\":\"%s\",\"mode\":\"%s\",\"parts\":%lld,"
            "\"edge_cut\":%zu,\"balance\":%.4f,\"batch_size\":%zu,"
            "\"num_batches\":%zu,"
            "\"throughput_ups\":%.6g,\"compute_sec\":%.6g,"
            "\"comm_sec\":%.6g,\"epoch_sec\":%.6g,"
            "\"barrier_wait_sec\":%.6g,\"idle_sec\":%.6g,"
            "\"token_messages\":%zu,\"comm_measured\":%s,"
            "\"wire_bytes\":%zu,\"wire_messages\":%zu,"
            "\"retries\":%zu,\"timeouts\":%zu,\"heartbeats\":%zu,"
            "\"rank_memory_bytes\":%zu,\"busy_imbalance\":%.4f,"
            "\"busy_share_sec\":[",
            run->engine.c_str(), run_spec.mode_name(),
            static_cast<long long>(parts), partition.edge_cut(ds.graph),
            partition.balance(), run->batch_size, run->num_batches,
            run->throughput_ups, run->compute_sec, run->comm_sec,
            run->epoch_sec, run->barrier_wait_sec, run->idle_sec,
            run->token_messages, run->comm_measured ? "true" : "false",
            run->wire_bytes, run->wire_messages, run->retries,
            run->timeouts, run->heartbeats, run->rank_memory_bytes,
            run->busy_imbalance());
        for (std::size_t p = 0; p < run->busy_sec.size(); ++p) {
          std::printf("%s%.6g", p == 0 ? "" : ",", run->busy_sec[p]);
        }
        std::printf("]}\n");
      }
      std::fflush(stdout);
      continue;
    }
    const bool async = run_spec.mode == ExecMode::kAsync;
    table.add_row(
        {TextTable::fmt_int(parts),
         TextTable::fmt_si(static_cast<double>(partition.edge_cut(ds.graph))),
         TextTable::fmt(partition.balance(), 2),
         TextTable::fmt_si(rc_run.throughput_ups),
         TextTable::fmt_si(rp_run.throughput_ups),
         TextTable::fmt(rc_run.compute_sec, 3),
         TextTable::fmt(rc_run.comm_sec, 3),
         TextTable::fmt(rp_run.compute_sec, 3),
         TextTable::fmt(rp_run.comm_sec, 3),
         TextTable::fmt(async ? rc_run.idle_sec : rc_run.barrier_wait_sec, 3),
         TextTable::fmt(async ? rp_run.idle_sec : rp_run.barrier_wait_sec, 3),
         TextTable::fmt_si(static_cast<double>(rc_run.wire_bytes)),
         TextTable::fmt_si(static_cast<double>(rp_run.wire_bytes)),
         rp_run.wire_bytes > 0
             ? TextTable::fmt(static_cast<double>(rc_run.wire_bytes) /
                                  static_cast<double>(rp_run.wire_bytes),
                              1) + "x"
             : "-",
         TextTable::fmt_si(static_cast<double>(rc_run.rank_memory_bytes)),
         TextTable::fmt_si(static_cast<double>(rp_run.rank_memory_bytes)),
         TextTable::fmt(rc_run.busy_imbalance(), 2),
         TextTable::fmt(rp_run.busy_imbalance(), 2)});
  }
  if (json) return 0;
  table.print();
  std::printf(
      "\nExpected shape (paper): Ripple up to ~30x RC throughput at bs=1000;\n"
      "Ripple throughput grows with partitions (8x from 4->16 at full\n"
      "scale) while RC stays flat; RC communication dwarfs Ripple's (~70x);\n"
      "per-rank memory SHRINKS as partitions are added (owned rows + halo,\n"
      "not a whole-graph replica).\n");
  return 0;
}
#endif  // RIPPLE_HAS_DIST
