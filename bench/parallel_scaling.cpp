// Thread-count scaling sweep of the shard-parallel propagation core: a
// 3-layer GC-S model over an R-MAT stream, re-run with pools of 1/2/4/8
// threads (same shard count everywhere, so the numeric work — and, by the
// determinism guarantee, every embedding bit — is identical across runs).
//
// Emits one JSON object per line on stdout so the BENCH_* trajectory can be
// scraped without parsing tables:
//   {"bench":"parallel_scaling","threads":4,...,"propagate_speedup_vs_first":2.7}
//
// Flags: --vertices=100000 --degree=16 --updates=2000 --batch=100
//        --threads=1,2,4,8 --shards=16 --quick --seed=42
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/ripple_engine.h"
#include "graph/generators.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const bool quick = flags.has("quick");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto num_vertices = static_cast<std::size_t>(
      flags.get_int("vertices", quick ? 20000 : 100000));
  const auto avg_degree =
      static_cast<std::size_t>(flags.get_int("degree", 16));
  const auto num_updates = static_cast<std::size_t>(
      flags.get_int("updates", quick ? 400 : 2000));
  const auto batch_size =
      static_cast<std::size_t>(flags.get_int("batch", 100));
  const auto num_shards =
      static_cast<std::size_t>(flags.get_int("shards", 16));
  const auto thread_counts =
      flags.get_int_list("threads", {1, 2, 4, 8});
  set_log_level(log_level::warn);

  // R-MAT with the canonical (0.57, 0.19, 0.19, 0.05) quadrant mix — the
  // heavy-tailed in-degree regime where propagation-tree work is largest.
  Rng rng(seed);
  auto graph = rmat(num_vertices, num_vertices * avg_degree, 0.57, 0.19,
                    0.19, 0.05, rng);
  const std::size_t feat_dim = 32;
  const std::size_t num_classes = 16;
  const auto features =
      Matrix::random_uniform(graph.num_vertices(), feat_dim, rng);

  StreamConfig stream_config;
  stream_config.num_updates = num_updates;
  stream_config.feat_dim = feat_dim;
  stream_config.seed = seed + 1;
  const auto stream = generate_stream(graph, stream_config);

  const auto config =
      workload_config(Workload::gc_s, feat_dim, num_classes, /*layers=*/3, 64);
  const auto model = GnnModel::random(config, seed + 2);

  std::fprintf(stderr,
               "parallel_scaling: n=%zu m=%zu updates=%zu batch=%zu "
               "shards=%zu layers=3\n",
               graph.num_vertices(), graph.num_edges(), stream.size(),
               batch_size, num_shards);

  // Speedups are reported relative to the FIRST --threads entry (pass 1
  // first for a true vs-1-thread number).
  double baseline_propagate = -1;
  for (const auto threads : thread_counts) {
    ThreadPool pool(static_cast<std::size_t>(threads));
    RippleOptions options;
    options.num_shards = num_shards;
    RippleEngine engine(model, graph, features, &pool, options);
    const auto run = bench::run_stream(engine, stream, batch_size);
    if (baseline_propagate < 0) baseline_propagate = run.mean_propagate_sec;
    const double speedup = run.mean_propagate_sec > 0
                               ? baseline_propagate / run.mean_propagate_sec
                               : 0;
    std::printf(
        "{\"bench\":\"parallel_scaling\",\"dataset\":\"rmat\","
        "\"vertices\":%zu,\"edges\":%zu,\"layers\":3,\"feat_dim\":%zu,"
        "\"hidden_dim\":64,\"updates\":%zu,\"batch_size\":%zu,"
        "\"shards\":%zu,\"threads\":%lld,\"num_batches\":%zu,"
        "\"throughput_ups\":%.6g,\"median_latency_sec\":%.6g,"
        "\"mean_update_sec\":%.6g,\"mean_propagate_sec\":%.6g,"
        "\"mean_apply_phase_sec\":%.6g,\"mean_compute_phase_sec\":%.6g,"
        "\"mean_tree_size\":%.6g,\"propagate_speedup_vs_first\":%.4g}\n",
        graph.num_vertices(), graph.num_edges(), feat_dim, stream.size(),
        batch_size, run.num_shards,
        static_cast<long long>(run.num_threads), run.num_batches,
        run.throughput_ups, run.median_latency_sec,
        run.mean_update_sec, run.mean_propagate_sec, run.mean_apply_phase_sec,
        run.mean_compute_phase_sec, run.mean_tree_size, speedup);
    std::fflush(stdout);
  }
  return 0;
}
