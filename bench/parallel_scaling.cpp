// Thread-count and skew scaling sweep of the shard-parallel propagation
// core: a 3-layer GC-S model over an R-MAT stream, re-run for every
// (R-MAT a, scheduler, threads) combination. The R-MAT a-parameter axis
// controls the in-degree tail (a = 0.25 is uniform; larger a concentrates
// edges — and therefore mailbox slots — on a few hot shards), which is
// exactly the regime the work-stealing scheduler targets: under static
// chunking one worker drains the hot shard while the rest idle.
//
// Within one (a, scheduler) group the shard count is fixed, so the numeric
// work — and, by the determinism guarantee, every embedding bit — is
// identical across thread counts and schedulers.
//
// Emits one JSON object per line on stdout so the BENCH_* trajectory can be
// scraped without parsing tables:
//   {"bench":"parallel_scaling","rmat_a":0.57,"scheduler":"steal",
//    "threads":4,...,"steals":123,"imbalance":1.08,...}
//
// Flags: --vertices=100000 --degree=16 --updates=2000 --batch=100
//        --threads=1,2,4,8 --shards=16 --rmat-a=0.45,0.57,0.75
//        --scheduler=both|static|steal --kernels=auto|scalar
//        --precision=f32|bf16|int8 --quick --seed=42
#include <cstdio>

#include "bench_util.h"
#include "common/rng.h"
#include "common/scheduler.h"
#include "common/thread_pool.h"
#include "core/ripple_engine.h"
#include "graph/generators.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const char* kernel_isa = apply_kernel_flag(flags);
  const char* precision = apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto num_vertices = static_cast<std::size_t>(
      flags.get_int("vertices", quick ? 20000 : 100000));
  const auto avg_degree =
      static_cast<std::size_t>(flags.get_int("degree", 16));
  const auto num_updates = static_cast<std::size_t>(
      flags.get_int("updates", quick ? 400 : 2000));
  const auto batch_size =
      static_cast<std::size_t>(flags.get_int("batch", 100));
  const auto num_shards =
      static_cast<std::size_t>(flags.get_int("shards", 16));
  const auto thread_counts =
      flags.get_int_list("threads", {1, 2, 4, 8});
  // Skew axis: remaining R-MAT mass splits evenly over b/c/d, so a = 0.25
  // is the uniform Erdős–Rényi-like mix and a = 0.75 a heavy power-law
  // tail (a = 0.57 sits near the canonical 0.57/0.19/0.19/0.05 mix).
  const auto rmat_as =
      flags.get_double_list("rmat-a", quick ? std::vector<double>{0.57}
                                            : std::vector<double>{0.45, 0.57,
                                                                  0.75});
  const std::string sched_choice =
      flags.get_choice("scheduler", {"both", "static", "steal"}, "both");
  std::vector<SchedulerMode> schedulers;
  if (sched_choice != "steal") schedulers.push_back(SchedulerMode::kStatic);
  if (sched_choice != "static") schedulers.push_back(SchedulerMode::kSteal);
  set_log_level(log_level::warn);

  const std::size_t feat_dim = 32;
  const std::size_t num_classes = 16;
  const auto config =
      workload_config(Workload::gc_s, feat_dim, num_classes, /*layers=*/3, 64);
  const auto model = GnnModel::random(config, seed + 2);

  for (const double a : rmat_as) {
    Rng rng(seed);
    const double rest = (1.0 - a) / 3.0;
    auto graph = rmat(num_vertices, num_vertices * avg_degree, a, rest, rest,
                      rest, rng);
    const auto features =
        Matrix::random_uniform(graph.num_vertices(), feat_dim, rng);

    StreamConfig stream_config;
    stream_config.num_updates = num_updates;
    stream_config.feat_dim = feat_dim;
    stream_config.seed = seed + 1;
    const auto stream = generate_stream(graph, stream_config);

    std::fprintf(stderr,
                 "parallel_scaling: a=%.3g n=%zu m=%zu updates=%zu batch=%zu "
                 "shards=%zu layers=3\n",
                 a, graph.num_vertices(), graph.num_edges(), stream.size(),
                 batch_size, num_shards);

    for (const SchedulerMode scheduler : schedulers) {
      // Speedups are reported relative to the FIRST --threads entry of the
      // same (a, scheduler) group (pass 1 first for a vs-1-thread number).
      double baseline_propagate = -1;
      for (const auto threads : thread_counts) {
        ThreadPool pool(static_cast<std::size_t>(threads));
        RippleOptions options;
        options.num_shards = num_shards;
        options.scheduler = scheduler;
        RippleEngine engine(model, graph, features, &pool, options);
        const auto run = bench::run_stream(engine, stream, batch_size);
        if (baseline_propagate < 0) {
          baseline_propagate = run.mean_propagate_sec;
        }
        const double speedup = run.mean_propagate_sec > 0
                                   ? baseline_propagate /
                                         run.mean_propagate_sec
                                   : 0;
        std::printf(
            "{\"bench\":\"parallel_scaling\",\"dataset\":\"rmat\","
            "\"kernels\":\"%s\",\"precision\":\"%s\",\"rmat_a\":%.4g,"
            "\"scheduler\":\"%s\","
            "\"vertices\":%zu,\"edges\":%zu,\"layers\":3,\"feat_dim\":%zu,"
            "\"hidden_dim\":64,\"updates\":%zu,\"batch_size\":%zu,"
            "\"shards\":%zu,\"threads\":%lld,\"num_batches\":%zu,"
            "\"throughput_ups\":%.6g,\"median_latency_sec\":%.6g,"
            "\"mean_update_sec\":%.6g,\"mean_propagate_sec\":%.6g,"
            "\"mean_apply_phase_sec\":%.6g,\"mean_compute_phase_sec\":%.6g,"
            "\"mean_tree_size\":%.6g,\"sched_width\":%zu,\"tasks\":%llu,"
            "\"steals\":%llu,\"busy_max_sec\":%.6g,\"busy_total_sec\":%.6g,"
            "\"imbalance\":%.4g,\"propagate_speedup_vs_first\":%.4g}\n",
            kernel_isa, precision, a, scheduler_mode_name(scheduler),
            graph.num_vertices(),
            graph.num_edges(), feat_dim, stream.size(), batch_size,
            run.num_shards, static_cast<long long>(run.num_threads),
            run.num_batches, run.throughput_ups, run.median_latency_sec,
            run.mean_update_sec, run.mean_propagate_sec,
            run.mean_apply_phase_sec, run.mean_compute_phase_sec,
            run.mean_tree_size, run.sched.width,
            static_cast<unsigned long long>(run.sched.tasks),
            static_cast<unsigned long long>(run.sched.steals),
            run.sched.busy_max_sec, run.sched.busy_total_sec,
            run.sched.imbalance(), speedup);
        std::fflush(stdout);
      }
    }
  }
  return 0;
}
