// Fig. 13: distributed GC-S-3L on the Products analogue — a graph that
// *does* fit a single machine, to show distribution overheads.
//   (a) throughput + latency on 8 partitions across batch sizes;
//   (b) compute/comm split across 2/4/8 partitions at batch size 1000.
//
// Expected shape: Ripple beats RC but distributed scaling is modest for a
// graph this size, and single-machine Ripple remains competitive — the
// paper's conclusion that graphs that fit one machine should stay there.
#include "dist_util.h"

using namespace ripple;

#if !RIPPLE_HAS_DIST
int main() {
  std::printf("fig13: the distributed runtime (src/dist) is not built yet; "
              "see ROADMAP.md open items.\n");
  return 0;
}
#else
int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.04 : 0.30);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_sizes =
      flags.get_int_list("batch-sizes", quick
                                            ? std::vector<std::int64_t>{10, 100}
                                            : std::vector<std::int64_t>{10, 100, 1000});
  auto part_counts = flags.get_int_list(
      "partitions", quick ? std::vector<std::int64_t>{2, 4}
                          : std::vector<std::int64_t>{2, 4, 8});
  set_log_level(log_level::warn);
  set_transport_options(TransportOptions::from_flags(flags));
  const auto run_spec = bench::RunSpec::from_flags(flags);
  bench::apply_tcp_run_policy(run_spec, part_counts);

  bench::print_header(
      "Fig. 13: distributed GC-S-3L on Products analogue");
  const auto prepared =
      bench::prepare("products-s", scale, quick ? 600 : 3000, seed);
  const auto& ds = prepared.dataset;
  std::printf("n=%zu m=%zu avg in-deg %.1f\n", ds.graph.num_vertices(),
              ds.graph.num_edges(), ds.graph.avg_in_degree());
  const auto config = workload_config(
      Workload::gc_s, ds.spec.feat_dim, ds.spec.num_classes, 3, 64);
  const auto model = GnnModel::random(config, seed);

  // ---- (a) 8 partitions ----
  const std::size_t parts_a =
      static_cast<std::size_t>(part_counts.back());
  const auto partition_a = bench::make_partition(ds.graph, parts_a);
  std::printf("\n(a) %zu partitions, --mode=%s\n", parts_a,
              run_spec.mode_name());
  TextTable table_a({"Batch", "RC up/s", "Ripple up/s",
                     "RC med lat (s)", "Ripple med lat (s)"});
  for (const auto batch_size : batch_sizes) {
    const auto bs = static_cast<std::size_t>(batch_size);
    const std::size_t num_batches = bench::batches_for(bs, quick ? 150 : 1500);
    auto rc = make_dist_engine(
        "rc", model, ds.graph, ds.features, partition_a, nullptr,
        bench::make_transport(run_spec, parts_a), SchedulerMode::kSteal,
        run_spec.mode);
    const auto rc_run =
        bench::run_dist_stream(*rc, prepared.stream, bs, num_batches);
    auto rp = make_dist_engine(
        "ripple", model, ds.graph, ds.features, partition_a, nullptr,
        bench::make_transport(run_spec, parts_a), SchedulerMode::kSteal,
        run_spec.mode);
    const auto rp_run =
        bench::run_dist_stream(*rp, prepared.stream, bs, num_batches);
    table_a.add_row({TextTable::fmt_int(batch_size),
                     TextTable::fmt_si(rc_run.throughput_ups),
                     TextTable::fmt_si(rp_run.throughput_ups),
                     TextTable::fmt(rc_run.median_latency_sec, 4),
                     TextTable::fmt(rp_run.median_latency_sec, 4)});
  }
  table_a.print();

  // ---- (b) compute/comm scaling at the largest batch size ----
  const auto bs_scaling = static_cast<std::size_t>(batch_sizes.back());
  std::printf("\n(b) compute/comm split, batch size %zu, --mode=%s (%s comm)\n",
              bs_scaling, run_spec.mode_name(),
              run_spec.is_tcp() ? "measured" : "modeled");
  // "stall" = barrier waits under --mode=bsp, poll-loop idle under async.
  TextTable table_b({"Parts", "RC comp (s)", "RC comm (s)", "RC stall (s)",
                     "RP comp (s)", "RP comm (s)", "RP stall (s)",
                     "RC total", "RP total"});
  const bool async = run_spec.mode == ExecMode::kAsync;
  for (const auto parts : part_counts) {
    const auto partition =
        bench::make_partition(ds.graph, static_cast<std::size_t>(parts));
    const std::size_t num_batches = quick ? 2 : 3;
    auto rc = make_dist_engine(
        "rc", model, ds.graph, ds.features, partition, nullptr,
        bench::make_transport(run_spec, static_cast<std::size_t>(parts)),
        SchedulerMode::kSteal, run_spec.mode);
    const auto rc_run =
        bench::run_dist_stream(*rc, prepared.stream, bs_scaling, num_batches);
    auto rp = make_dist_engine(
        "ripple", model, ds.graph, ds.features, partition, nullptr,
        bench::make_transport(run_spec, static_cast<std::size_t>(parts)),
        SchedulerMode::kSteal, run_spec.mode);
    const auto rp_run =
        bench::run_dist_stream(*rp, prepared.stream, bs_scaling, num_batches);
    table_b.add_row(
        {TextTable::fmt_int(parts),
         TextTable::fmt(rc_run.compute_sec, 3),
         TextTable::fmt(rc_run.comm_sec, 3),
         TextTable::fmt(async ? rc_run.idle_sec : rc_run.barrier_wait_sec, 3),
         TextTable::fmt(rp_run.compute_sec, 3),
         TextTable::fmt(rp_run.comm_sec, 3),
         TextTable::fmt(async ? rp_run.idle_sec : rp_run.barrier_wait_sec, 3),
         TextTable::fmt(rc_run.compute_sec + rc_run.comm_sec +
                            rc_run.epoch_sec, 3),
         TextTable::fmt(rp_run.compute_sec + rp_run.comm_sec +
                            rp_run.epoch_sec, 3)});
  }
  table_b.print();
  std::printf(
      "\nExpected shape (paper): Ripple > RC throughout; gains from more\n"
      "partitions are modest for a graph this size (~190 up/s at 8 parts vs\n"
      "~110 at 2 at full scale) — if it fits one machine, keep it there.\n");
  return 0;
}
#endif  // RIPPLE_HAS_DIST
