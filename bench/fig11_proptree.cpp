// Fig. 11: per-update batch latency as a function of the number of vertices
// in the propagation tree (batch size 1, GC-S, 2 and 3 layers, Products
// analogue), RC vs Ripple.
//
// Expected shape: latency correlates strongly with tree size for both
// engines, and Ripple sits roughly an order of magnitude below RC across
// the whole range.
#include <algorithm>
#include <map>

#include "bench_util.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.05 : 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto num_updates =
      static_cast<std::size_t>(flags.get_int("updates", quick ? 60 : 400));
  set_log_level(log_level::warn);

  bench::print_header(
      "Fig. 11: batch latency vs propagation-tree size (batch size 1, "
      "GC-S, Products analogue)");

  for (const std::size_t layers : {2u, 3u}) {
    const auto prepared = bench::prepare("products-s", scale, num_updates,
                                         seed);
    const auto& ds = prepared.dataset;
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, layers, 64);
    const auto model = GnnModel::random(config, seed);

    auto rc = make_engine("rc", model, ds.graph, ds.features);
    const auto rc_run = bench::run_stream(*rc, prepared.stream, 1);
    auto rp = make_engine("ripple", model, ds.graph, ds.features);
    const auto rp_run = bench::run_stream(*rp, prepared.stream, 1);

    // Bin updates by tree size (log-spaced) and report median latency per
    // bin — the textual rendering of the paper's scatter plot.
    struct Bin {
      std::vector<double> rc;
      std::vector<double> rp;
    };
    std::map<std::size_t, Bin> bins;  // key = bin lower bound
    auto bin_of = [](std::size_t tree) {
      std::size_t lo = 1;
      while (lo * 4 <= tree + 1) lo *= 4;
      return lo;
    };
    for (std::size_t i = 0; i < rp_run.tree_sizes.size(); ++i) {
      bins[bin_of(rp_run.tree_sizes[i])].rp.push_back(
          rp_run.batch_latencies[i]);
    }
    for (std::size_t i = 0; i < rc_run.tree_sizes.size(); ++i) {
      bins[bin_of(rc_run.tree_sizes[i])].rc.push_back(
          rc_run.batch_latencies[i]);
    }

    std::printf("\n-- GC-S %zu-layer (n=%zu) --\n", layers,
                ds.graph.num_vertices());
    TextTable table({"Tree-size bin", "#updates", "RC med lat (s)",
                     "Ripple med lat (s)", "RC/Ripple"});
    for (auto& [lo, bin] : bins) {
      if (bin.rc.empty() || bin.rp.empty()) continue;
      const double rc_med = median(bin.rc);
      const double rp_med = median(bin.rp);
      table.add_row(
          {"[" + std::to_string(lo) + ", " + std::to_string(lo * 4) + ")",
           TextTable::fmt_int(static_cast<long long>(bin.rp.size())),
           TextTable::fmt(rc_med, 6), TextTable::fmt(rp_med, 6),
           rp_med > 0 ? TextTable::fmt(rc_med / rp_med, 1) + "x" : "-"});
    }
    table.print();
  }
  std::printf(
      "\nExpected shape (paper): latency rises with tree size for both;\n"
      "Ripple roughly an order of magnitude faster across the spectrum.\n");
  return 0;
}
