// Fig. 9: single-machine throughput (updates/sec) and median batch latency
// for the five 2-layer GNN workloads on the Arxiv, Products, and Reddit
// analogues, across batch sizes {1, 10, 100, 1000}, comparing DRC, RC, and
// Ripple.
//
// Expected shape: Ripple's throughput exceeds RC by roughly an order of
// magnitude and DRC by two to three orders; DRC's throughput flattens
// beyond batch size 10 (graph-update overheads); Reddit is the slowest
// graph for everyone (high in-degree); throughput and latency trade off as
// batch size grows.
#include "bench_util.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.04 : 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_sizes =
      flags.get_int_list("batch-sizes", quick
                                            ? std::vector<std::int64_t>{1, 10, 100}
                                            : std::vector<std::int64_t>{1, 10, 100, 1000});
  const std::string only_dataset = flags.get_string("dataset", "");
  const std::size_t num_layers =
      static_cast<std::size_t>(flags.get_int("layers", 2));
  set_log_level(log_level::warn);

  bench::print_header("Fig. 9: single-machine throughput + median latency, "
                      "5 workloads x 3 graphs, " +
                      std::to_string(num_layers) + "-layer");

  std::vector<std::string> datasets = {"arxiv-s", "products-s", "reddit-s"};
  if (!only_dataset.empty()) datasets = {only_dataset};

  for (const auto& dataset : datasets) {
    const auto prepared =
        bench::prepare(dataset, scale, quick ? 600 : 3200, seed);
    const auto& ds = prepared.dataset;
    std::printf("\n-- %s (n=%zu, m=%zu, avg in-deg %.1f) --\n",
                dataset.c_str(), ds.graph.num_vertices(), ds.graph.num_edges(),
                ds.graph.avg_in_degree());
    for (Workload workload : all_workloads()) {
      const auto config = workload_config(workload, ds.spec.feat_dim,
                                          ds.spec.num_classes, num_layers, 64);
      const auto model = GnnModel::random(config, seed);
      TextTable table({"Batch", "DRC up/s", "RC up/s", "Ripple up/s",
                       "DRC med lat (s)", "RC med lat (s)",
                       "Ripple med lat (s)"});
      for (const auto batch_size : batch_sizes) {
        const auto bs = static_cast<std::size_t>(batch_size);
        const std::size_t num_batches =
            bench::batches_for(bs, quick ? 200 : 800);
        std::vector<bench::RunMetrics> runs;
        for (const char* key : {"drc", "rc", "ripple"}) {
          auto engine = make_engine(key, model, ds.graph, ds.features);
          runs.push_back(
              bench::run_stream(*engine, prepared.stream, bs, num_batches));
        }
        table.add_row({TextTable::fmt_int(batch_size),
                       TextTable::fmt_si(runs[0].throughput_ups),
                       TextTable::fmt_si(runs[1].throughput_ups),
                       TextTable::fmt_si(runs[2].throughput_ups),
                       TextTable::fmt(runs[0].median_latency_sec, 5),
                       TextTable::fmt(runs[1].median_latency_sec, 5),
                       TextTable::fmt(runs[2].median_latency_sec, 5)});
      }
      std::printf("\n[%s] workload %s\n", dataset.c_str(),
                  workload_name(workload));
      table.print();
    }
  }
  std::printf(
      "\nExpected shape (paper): Ripple >> RC >> DRC on throughput (up to\n"
      "150x/2000x on Arxiv, 19x/2000x on Products vs RC/DRC); latency grows\n"
      "with batch size; Reddit slowest due to its in-degree.\n");
  return 0;
}
