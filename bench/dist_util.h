// Shared harness for the distributed benches (Figs. 12, 13).
//
// The distributed runtime (src/dist) is a planned follow-up (see ROADMAP.md
// open items); until it lands, the engine-dependent helpers here are gated
// on its header so the dist benches compile into informative stubs.
#pragma once

#include "bench_util.h"
#include "partition/partition.h"

#if __has_include("dist/dist_engine.h")
#define RIPPLE_HAS_DIST 1
#include "dist/dist_engine.h"
#else
#define RIPPLE_HAS_DIST 0
#endif

namespace ripple::bench {

// Builds the LDG+refine partition used by all distributed benches (the
// METIS substitution; see DESIGN.md).
inline Partition make_partition(const DynamicGraph& graph,
                                std::size_t num_parts) {
  auto partition = ldg_partition(graph, num_parts);
  refine_partition(graph, partition, 2);
  return partition;
}

#if RIPPLE_HAS_DIST

struct DistRunMetrics {
  std::string engine;
  std::size_t batch_size = 0;
  std::size_t num_batches = 0;
  double throughput_ups = 0;       // vs modeled total (compute + comm) time
  double median_latency_sec = 0;
  double compute_sec = 0;          // totals across the run
  double comm_sec = 0;
  std::size_t wire_bytes = 0;
  std::size_t wire_messages = 0;
};

inline DistRunMetrics run_dist_stream(DistEngineBase& engine,
                                      std::span<const GraphUpdate> stream,
                                      std::size_t batch_size,
                                      std::size_t max_batches = 0) {
  DistRunMetrics metrics;
  metrics.engine = engine.name();
  metrics.batch_size = batch_size;
  std::vector<double> latencies;
  for (const auto& batch : make_batches(stream, batch_size)) {
    const DistBatchResult result = engine.apply_batch(batch);
    latencies.push_back(result.total_sec());
    metrics.compute_sec += result.compute_sec;
    metrics.comm_sec += result.comm_sec;
    metrics.wire_bytes += result.wire_bytes;
    metrics.wire_messages += result.wire_messages;
    ++metrics.num_batches;
    if (max_batches != 0 && metrics.num_batches >= max_batches) break;
  }
  const double total = metrics.compute_sec + metrics.comm_sec;
  const double updates = static_cast<double>(metrics.num_batches) *
                         static_cast<double>(batch_size);
  metrics.throughput_ups = total > 0 ? updates / total : 0;
  metrics.median_latency_sec = latencies.empty() ? 0 : median(latencies);
  return metrics;
}

#endif  // RIPPLE_HAS_DIST

}  // namespace ripple::bench
