// Shared harness for the distributed benches (Figs. 12, 13).
//
// The distributed runtime (src/dist) is a planned follow-up (see ROADMAP.md
// open items); until it lands, the engine-dependent helpers here are gated
// on its header so the dist benches compile into informative stubs.
#pragma once

#include <cstdio>

#include "bench_util.h"
#include "partition/partition.h"

#if __has_include("dist/dist_engine.h")
#define RIPPLE_HAS_DIST 1
#include "dist/dist_engine.h"
#include "dist/tcp_transport.h"
#else
#define RIPPLE_HAS_DIST 0
#endif

namespace ripple::bench {

// Builds the LDG+refine partition used by all distributed benches (the
// METIS substitution; see DESIGN.md).
inline Partition make_partition(const DynamicGraph& graph,
                                std::size_t num_parts) {
  auto partition = ldg_partition(graph, num_parts);
  refine_partition(graph, partition, 2);
  return partition;
}

#if RIPPLE_HAS_DIST

// Run-shape selection shared by the dist benches and the distributed
// example: --transport=sim (default, modeled cost) or --transport=tcp
// (real sockets, measured seconds; needs --rank and --peers), and
// --mode=bsp (default, barriered supersteps) or --mode=async (barrier-free
// epoch with token termination; see docs/async.md).
struct RunSpec {
  std::string kind = "sim";
  TcpConfig tcp;  // valid only when kind == "tcp"
  ExecMode mode = ExecMode::kBsp;

  bool is_tcp() const { return kind == "tcp"; }
  std::size_t world_size() const { return tcp.peers.size(); }
  const char* mode_name() const { return exec_mode_name(mode); }

  static RunSpec from_flags(const Flags& flags) {
    RunSpec spec;
    spec.kind = flags.get_choice("transport", {"sim", "tcp"}, "sim");
    if (spec.is_tcp()) spec.tcp = TcpConfig::from_flags(flags);
    spec.mode =
        parse_exec_mode(flags.get_choice("mode", exec_mode_choices(), "bsp"));
    return spec;
  }
};

// Bench-side tcp run policy: one rank per partition (the world size pins
// the partition sweep to a single entry) and only the leader narrates —
// every rank runs the identical sweep, so non-leaders mute stdout.
inline void apply_tcp_run_policy(const RunSpec& spec,
                                 std::vector<std::int64_t>& part_counts) {
  if (!spec.is_tcp()) return;
  part_counts = {static_cast<std::int64_t>(spec.world_size())};
  if (spec.tcp.rank != 0) {
    std::freopen("/dev/null", "w", stdout);
  }
}

inline std::unique_ptr<Transport> make_transport(const RunSpec& spec,
                                                 std::size_t num_parts) {
  if (spec.is_tcp()) {
    RIPPLE_CHECK_MSG(num_parts == spec.world_size(),
                     "--transport=tcp runs one rank per partition: "
                         << spec.world_size() << " peers vs " << num_parts
                         << " partitions");
    return std::make_unique<TcpTransport>(
        num_parts, default_transport_options(), spec.tcp);
  }
  return std::make_unique<SimTransport>(num_parts,
                                        default_transport_options());
}

struct DistRunMetrics {
  std::string engine;
  std::size_t batch_size = 0;
  std::size_t num_batches = 0;
  double throughput_ups = 0;       // vs total (compute + comm) time
  double median_latency_sec = 0;
  double compute_sec = 0;          // totals across the run
  double comm_sec = 0;
  // Stall accounting (totals of the per-batch worst rank): BSP charges the
  // slowest rank's superstep barrier waits, async charges its poll-loop
  // idle; epoch_sec totals the barrier-free epoch makespans (async only).
  double epoch_sec = 0;
  double barrier_wait_sec = 0;
  double idle_sec = 0;
  std::size_t token_messages = 0;
  // True when the run's seconds are measured wall clock (tcp transport)
  // rather than the cost model's output — never average the two kinds.
  bool comm_measured = false;
  std::size_t wire_bytes = 0;
  std::size_t wire_messages = 0;
  // Robustness counters (docs/fault_tolerance.md): reconnect attempts,
  // deadline expiries, and idle-liveness heartbeat frames across the run.
  // All zero on sim and on a healthy, busy tcp cluster — a nonzero value
  // in a recorded row is the wire telling you the run was not clean.
  std::size_t retries = 0;
  std::size_t timeouts = 0;
  std::size_t heartbeats = 0;
  // ONE rank's resident row state after the run (owned rows + halo +
  // mailbox shards + row map; see DistEngineBase::memory_bytes) — the
  // per-rank footprint that must SHRINK as partitions are added.
  std::size_t rank_memory_bytes = 0;
  // Per-rank busy seconds accumulated across the run
  // (DistBatchResult::busy_share_sec) — the skew detector's evidence and
  // fig12's per-rank busy-share column.
  std::vector<double> busy_sec;

  // Worst rank's busy share over the ideal share (1.0 == balanced); the
  // load-skew figure next to the structural Partition::balance().
  double busy_imbalance() const {
    if (busy_sec.empty()) return 1.0;
    double total = 0;
    double worst = 0;
    for (const double v : busy_sec) {
      total += v;
      worst = std::max(worst, v);
    }
    const double mean = total / static_cast<double>(busy_sec.size());
    return mean > 0 ? worst / mean : 1.0;
  }
};

inline DistRunMetrics run_dist_stream(DistEngineBase& engine,
                                      std::span<const GraphUpdate> stream,
                                      std::size_t batch_size,
                                      std::size_t max_batches = 0) {
  DistRunMetrics metrics;
  metrics.engine = engine.name();
  metrics.batch_size = batch_size;
  std::vector<double> latencies;
  for (const auto& batch : make_batches(stream, batch_size)) {
    const DistBatchResult result = engine.apply_batch(batch);
    latencies.push_back(result.total_sec());
    metrics.compute_sec += result.compute_sec;
    metrics.comm_sec += result.comm_sec;
    metrics.epoch_sec += result.epoch_sec;
    metrics.barrier_wait_sec += result.barrier_wait_max();
    metrics.idle_sec += result.idle_max();
    metrics.token_messages += result.token_messages;
    metrics.comm_measured = result.comm_measured;
    metrics.wire_bytes += result.wire_bytes;
    metrics.wire_messages += result.wire_messages;
    metrics.retries += result.retries;
    metrics.timeouts += result.timeouts;
    metrics.heartbeats += result.heartbeats;
    if (metrics.busy_sec.size() < result.num_parts) {
      metrics.busy_sec.resize(result.num_parts, 0.0);
    }
    for (std::size_t p = 0; p < result.num_parts; ++p) {
      metrics.busy_sec[p] += result.busy_share_sec(p);
    }
    ++metrics.num_batches;
    if (max_batches != 0 && metrics.num_batches >= max_batches) break;
  }
  const double total =
      metrics.compute_sec + metrics.comm_sec + metrics.epoch_sec;
  const double updates = static_cast<double>(metrics.num_batches) *
                         static_cast<double>(batch_size);
  metrics.throughput_ups = total > 0 ? updates / total : 0;
  metrics.median_latency_sec = latencies.empty() ? 0 : median(latencies);
  metrics.rank_memory_bytes = engine.memory_bytes();
  return metrics;
}

#endif  // RIPPLE_HAS_DIST

}  // namespace ripple::bench
