// Fig. 8: median batch latency with update/propagate phase split across the
// six strategies — DGL-emulated vertex-wise on CPU (DNC) and simulated
// accelerator (DNG), DGL-emulated layer-wise recompute on CPU (DRC) and
// simulated accelerator (DRG), the custom edge-list recompute (RC), and
// Ripple (RP) — on Arxiv and Products analogues, GC-S 3-layer, batch 10.
//
// Expected shape: DNC/DNG slowest (vertex-wise redundancy), accelerator
// variants give little or negative benefit (tiny kernels, launch+transfer
// overhead), DRC's update phase dominates (CSR rebuild per batch), RC is
// 40-60% faster than DRC, and Ripple is the fastest by a wide margin.
#include "bench_util.h"
#include "device/accelerator.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.05 : 0.10);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto num_batches =
      static_cast<std::size_t>(flags.get_int("batches", quick ? 3 : 5));
  const std::size_t batch_size =
      static_cast<std::size_t>(flags.get_int("batch-size", 10));
  const bool skip_dnc = flags.get_bool("skip-dnc", false);
  set_log_level(log_level::warn);

  bench::print_header(
      "Fig. 8: strategy comparison, GC-S 3-layer, batch size 10 "
      "(update + propagate phase split)");
  const AcceleratorModel accel;

  for (const std::string dataset : {"arxiv-s", "products-s"}) {
    const auto prepared = bench::prepare(
        dataset, scale, batch_size * num_batches + 16, seed);
    const auto& ds = prepared.dataset;
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);

    std::printf("\n-- %s (n=%zu, m=%zu) --\n", dataset.c_str(),
                ds.graph.num_vertices(), ds.graph.num_edges());
    TextTable table({"Strategy", "Median batch (s)", "Update (s)",
                     "Propagate (s)"});

    std::vector<std::string> engines = {"drc", "rc", "ripple"};
    if (!skip_dnc) engines.insert(engines.begin(), "dnc");
    bench::RunMetrics dnc_run;
    bench::RunMetrics drc_run;
    for (const auto& key : engines) {
      auto engine = make_engine(key, model, ds.graph, ds.features);
      const auto run =
          bench::run_stream(*engine, prepared.stream, batch_size, num_batches);
      if (key == "dnc") dnc_run = run;
      if (key == "drc") drc_run = run;
      const char* label = key == "dnc" ? "DNC (vertex-wise, CPU)"
                          : key == "drc" ? "DRC (DGL-emu layer-wise, CPU)"
                          : key == "rc" ? "RC (edge-list layer-wise, CPU)"
                                        : "RP (Ripple incremental, CPU)";
      table.add_row({label, TextTable::fmt(run.median_latency_sec, 5),
                     TextTable::fmt(run.mean_update_sec, 5),
                     TextTable::fmt(run.mean_propagate_sec, 5)});
      // Simulated-accelerator variants derive their propagate time from the
      // CPU run + the device cost model (DESIGN.md substitution).
      if (key == "dnc" || key == "drc") {
        BatchResult pseudo;
        pseudo.propagation_tree_size =
            static_cast<std::size_t>(run.mean_tree_size);
        pseudo.propagate_sec = run.mean_propagate_sec;
        const double accel_prop =
            key == "dnc" ? model_vertexwise_accel_sec(accel, pseudo, config)
                         : model_layerwise_accel_sec(accel, pseudo, config);
        table.add_row({key == "dnc" ? "DNG (vertex-wise, sim. GPU)"
                                    : "DRG (layer-wise, sim. GPU)",
                       TextTable::fmt(run.mean_update_sec + accel_prop, 5),
                       TextTable::fmt(run.mean_update_sec, 5),
                       TextTable::fmt(accel_prop, 5)});
      }
    }
    table.print();
  }
  std::printf(
      "\nExpected shape (paper): DNC slower than DRC; GPU variants within a\n"
      "few %% of CPU (occasionally slower); RC 40-60%% faster than DRC with\n"
      "a much cheaper update phase; Ripple fastest overall.\n");
  return 0;
}
