// Fig. 2b: % of affected vertices and per-batch latency vs update batch
// size, for recompute (RC) and Ripple, on Arxiv and Products analogues
// (3-layer GC-S as in the paper's motivating experiment).
//
// Expected shape: the affected fraction grows with batch size and is far
// larger for the denser Products graph; Ripple's latency sits well below
// RC's at every batch size.
#include "bench_util.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.08 : 1.0);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_sizes = flags.get_int_list("batch-sizes", {1, 10, 100});
  set_log_level(log_level::warn);

  bench::print_header(
      "Fig. 2b: % affected vertices + batch latency vs batch size "
      "(3-layer GC-S, RC vs Ripple)");

  for (const std::string dataset : {"arxiv-s", "products-s"}) {
    const auto prepared = bench::prepare(dataset, scale, 4000, seed);
    const auto& ds = prepared.dataset;
    const std::size_t n = ds.graph.num_vertices();
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);

    std::printf("\n-- %s (n=%zu, m=%zu, avg in-deg %.1f) --\n", dataset.c_str(),
                n, ds.graph.num_edges(), ds.graph.avg_in_degree());
    TextTable table({"Batch", "% affected", "RC latency (s)",
                     "Ripple latency (s)", "Speedup"});
    for (const auto batch_size : batch_sizes) {
      const auto bs = static_cast<std::size_t>(batch_size);
      const std::size_t num_batches = bench::batches_for(bs, quick ? 300 : 1200);
      auto rc = make_engine("rc", model, ds.graph, ds.features);
      const auto rc_run = bench::run_stream(*rc, prepared.stream, bs,
                                            num_batches);
      auto rp = make_engine("ripple", model, ds.graph, ds.features);
      const auto rp_run = bench::run_stream(*rp, prepared.stream, bs,
                                            num_batches);
      // Affected % per the paper: unique vertices in the final hop's
      // propagation tree relative to |V| (we report mean tree size / (L*n)
      // normalized per hop for comparability).
      const double affected_pct =
          100.0 * rp_run.mean_tree_size /
          static_cast<double>(config.num_layers) / static_cast<double>(n);
      table.add_row(
          {TextTable::fmt_int(batch_size), TextTable::fmt(affected_pct, 2),
           TextTable::fmt(rc_run.median_latency_sec, 5),
           TextTable::fmt(rp_run.median_latency_sec, 5),
           TextTable::fmt(rp_run.median_latency_sec > 0
                              ? rc_run.median_latency_sec /
                                    rp_run.median_latency_sec
                              : 0,
                          1) +
               "x"});
    }
    table.print();
  }
  std::printf(
      "\nExpected shape (paper): affected %% grows with batch size, much\n"
      "faster on the dense Products graph (4%%->80%% at full scale) than\n"
      "Arxiv (0.1%%->4%%); Ripple latency < RC latency throughout.\n");
  return 0;
}
