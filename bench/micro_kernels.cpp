// google-benchmark microbenchmarks for the kernels on Ripple's hot paths:
// GEMM/GEMV, neighborhood aggregation, mailbox accumulation, edge-list
// mutation vs CSR rebuild (the DGL-emulation contrast), and the end-to-end
// single-update apply for RC vs Ripple.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/ripple_engine.h"
#include "gnn/aggregator.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "infer/recompute.h"
#include "tensor/ops.h"

namespace ripple {
namespace {

void BM_Gemm(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(1);
  const auto a = Matrix::random_uniform(dim, dim, rng);
  const auto b = Matrix::random_uniform(dim, dim, rng);
  Matrix c;
  for (auto _ : state) {
    gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(dim * dim * dim));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void BM_GemvRow(benchmark::State& state) {
  const auto dim = static_cast<std::size_t>(state.range(0));
  Rng rng(2);
  const auto w = Matrix::random_uniform(dim, dim, rng);
  std::vector<float> x(dim, 0.5f);
  std::vector<float> y(dim);
  for (auto _ : state) {
    gemv_row(x, w, y);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_GemvRow)->Arg(64)->Arg(128);

void BM_AggregateNeighbors(benchmark::State& state) {
  const auto degree = static_cast<std::size_t>(state.range(0));
  Rng rng(3);
  const auto h = Matrix::random_uniform(degree + 1, 64, rng);
  std::vector<Neighbor> nbrs;
  for (std::size_t i = 0; i < degree; ++i) {
    nbrs.push_back({static_cast<VertexId>(i), 1.0f});
  }
  std::vector<float> out(64);
  for (auto _ : state) {
    aggregate_neighbors(AggregatorKind::sum, nbrs, h, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(degree));
}
BENCHMARK(BM_AggregateNeighbors)->Arg(7)->Arg(50)->Arg(500);

void BM_MailboxAccumulate(benchmark::State& state) {
  Mailbox box(64);
  std::vector<float> h_new(64, 1.0f);
  std::vector<float> h_old(64, 0.5f);
  VertexId v = 0;
  for (auto _ : state) {
    box.accumulate(v++ % 1024, 1.0f, h_new, h_old);
  }
  state.counters["entries"] = static_cast<double>(box.size());
}
BENCHMARK(BM_MailboxAccumulate);

void BM_EdgeListMutation(benchmark::State& state) {
  Rng rng(4);
  auto graph = erdos_renyi(20000, 200000, rng);
  VertexId u = 0;
  for (auto _ : state) {
    const auto v = static_cast<VertexId>((u * 7919 + 13) % 20000);
    if (!graph.add_edge(u % 20000, v)) {
      graph.remove_edge(u % 20000, v);
    }
    ++u;
  }
}
BENCHMARK(BM_EdgeListMutation);

void BM_CsrRebuild(benchmark::State& state) {
  // The per-batch cost the DGL emulation pays on every update batch.
  Rng rng(5);
  const auto graph = erdos_renyi(20000, 200000, rng);
  for (auto _ : state) {
    auto csr = Csr::from_graph(graph);
    benchmark::DoNotOptimize(csr.num_edges());
  }
}
BENCHMARK(BM_CsrRebuild);

void BM_SingleUpdate(benchmark::State& state) {
  // End-to-end single edge toggle: RC (range=0) vs Ripple (range=1).
  Rng rng(6);
  auto graph = erdos_renyi(5000, 100000, rng);
  Matrix features = Matrix::random_uniform(5000, 64, rng);
  const auto config = workload_config(Workload::gc_s, 64, 16, 2, 64);
  const auto model = GnnModel::random(config, 7);
  std::unique_ptr<InferenceEngine> engine;
  if (state.range(0) == 0) {
    engine = std::make_unique<RecomputeEngine>(model, graph, features);
  } else {
    engine = std::make_unique<RippleEngine>(model, graph, features);
  }
  bool present = false;
  const std::vector<GraphUpdate> add = {GraphUpdate::edge_add(1, 2)};
  const std::vector<GraphUpdate> del = {GraphUpdate::edge_del(1, 2)};
  for (auto _ : state) {
    engine->apply_batch(present ? del : add);
    present = !present;
  }
}
BENCHMARK(BM_SingleUpdate)->Arg(0)->Arg(1);

}  // namespace
}  // namespace ripple

BENCHMARK_MAIN();
