// Microbenchmarks for the kernels on Ripple's hot paths: GEMM/GEMV across
// the kernel-variant axis (scalar vs dispatched SIMD tier, packed vs
// unpacked B panels), neighborhood aggregation, mailbox accumulation,
// edge-list mutation vs CSR rebuild (the DGL-emulation contrast), and the
// end-to-end single-update apply for RC vs Ripple.
//
// Self-timed (no google-benchmark dependency): each case runs batches of
// iterations until a minimum wall time is reached, then emits one JSON
// object per line on stdout — the same scrape-friendly format as
// parallel_scaling:
//   {"bench":"micro_kernels","op":"gemm","dim":128,"kernels":"avx2",
//    "packed":true,"ns_per_op":...,"gflops":...}
//
// The kernel-variant axis deliberately re-dispatches via set_kernel_mode
// between cases, so one run on an AVX2 host yields the scalar-vs-SIMD
// speedup table quoted in docs/kernels.md. Output bits are identical
// across the axis (the kernels.h determinism contract); only the time
// changes.
//
// The packed-B cases additionally carry the weight-storage precision axis
// (--precision=f32|bf16|int8, tensor/precision.h): panels are packed at the
// flagged precision and the JSON row gains "precision" plus the packed
// panel bytes per logical row, so one sweep yields the f32-vs-bf16-vs-int8
// footprint/throughput table in docs/precision.md. Unpacked cases always
// run f32 (only packed panels have a storage precision).
//
// Flags: --dims=64,128,256 --min-time-ms=200 --precision=f32|bf16|int8
//        --quick --seed=42
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/rng.h"
#include "common/timer.h"
#include "core/ripple_engine.h"
#include "gnn/aggregator.h"
#include "graph/csr.h"
#include "graph/generators.h"
#include "infer/recompute.h"
#include "tensor/ops.h"

using namespace ripple;

namespace {

double g_min_time_sec = 0.2;
// --precision, stamped on packed-B JSON rows (set once in main).
const char* g_precision = "f32";

// Runs fn in growing batches until g_min_time_sec of wall time accumulates;
// returns seconds per iteration.
template <typename Fn>
double time_per_iter(Fn&& fn) {
  fn();  // warm-up (faults pages, packs thread-local scratch, etc.)
  std::size_t batch = 1;
  for (;;) {
    StopWatch watch;
    for (std::size_t i = 0; i < batch; ++i) fn();
    const double sec = watch.elapsed_sec();
    if (sec >= g_min_time_sec) {
      return sec / static_cast<double>(batch);
    }
    const double target = sec > 0 ? g_min_time_sec / sec * 1.3 : 16.0;
    batch = static_cast<std::size_t>(static_cast<double>(batch) * target) + 1;
  }
}

void emit(const std::string& op, std::size_t dim, const char* kernel_isa,
          int packed /* -1 = axis not applicable */, double sec_per_op,
          double flops_per_op, double items_per_op,
          std::size_t packed_bytes = 0) {
  std::printf("{\"bench\":\"micro_kernels\",\"op\":\"%s\",\"dim\":%zu,"
              "\"kernels\":\"%s\",",
              op.c_str(), dim, kernel_isa);
  if (packed >= 0) std::printf("\"packed\":%s,", packed ? "true" : "false");
  if (packed == 1) {
    std::printf("\"precision\":\"%s\",", g_precision);
    if (dim > 0) {
      std::printf("\"packed_bytes_per_row\":%.6g,",
                  static_cast<double>(packed_bytes) /
                      static_cast<double>(dim));
    }
  }
  std::printf("\"ns_per_op\":%.6g", sec_per_op * 1e9);
  if (flops_per_op > 0) {
    std::printf(",\"gflops\":%.6g", flops_per_op / sec_per_op * 1e-9);
  }
  if (items_per_op > 0) {
    std::printf(",\"items_per_sec\":%.6g", items_per_op / sec_per_op);
  }
  std::printf("}\n");
  std::fflush(stdout);
}

// The kernel-variant axis: the portable scalar tier vs whatever the host
// dispatches (on a scalar-only host the two coincide and the numbers
// demonstrate overhead-neutrality of the dispatch layer).
struct KernelVariant {
  KernelMode mode;
  const char* label;
};

std::vector<KernelVariant> kernel_variants() {
  std::vector<KernelVariant> variants{{KernelMode::kScalar, "scalar"}};
  set_kernel_mode(KernelMode::kAuto);
  if (active_kernel_isa() != KernelIsa::kScalar) {
    variants.push_back({KernelMode::kAuto, kernel_isa_name(active_kernel_isa())});
  }
  return variants;
}

void bench_gemm(const std::vector<std::int64_t>& dims) {
  for (const auto dim64 : dims) {
    const auto dim = static_cast<std::size_t>(dim64);
    Rng rng(1);
    const auto a = Matrix::random_uniform(dim, dim, rng);
    const auto b = Matrix::random_uniform(dim, dim, rng);
    const auto pb = PackedMatrix::pack(b, active_precision());
    Matrix c;
    const double flops = 2.0 * static_cast<double>(dim) * dim * dim;
    for (const auto& variant : kernel_variants()) {
      set_kernel_mode(variant.mode);
      emit("gemm", dim, variant.label, /*packed=*/0,
           time_per_iter([&] { gemm(a, b, c); }), flops, 0);
      emit("gemm", dim, variant.label, /*packed=*/1,
           time_per_iter([&] { gemm(a, pb, c); }), flops, 0, pb.bytes());
    }
  }
}

void bench_gemv_row(const std::vector<std::int64_t>& dims) {
  for (const auto dim64 : dims) {
    const auto dim = static_cast<std::size_t>(dim64);
    Rng rng(2);
    const auto w = Matrix::random_uniform(dim, dim, rng);
    const auto pw = PackedMatrix::pack(w, active_precision());
    std::vector<float> x(dim, 0.5f);
    std::vector<float> y(dim);
    const double flops = 2.0 * static_cast<double>(dim) * dim;
    for (const auto& variant : kernel_variants()) {
      set_kernel_mode(variant.mode);
      emit("gemv_row", dim, variant.label, /*packed=*/0,
           time_per_iter([&] { gemv_row(x, w, y); }), flops, 0);
      emit("gemv_row", dim, variant.label, /*packed=*/1,
           time_per_iter([&] { gemv_row(x, pw, y); }), flops, 0, pw.bytes());
    }
  }
}

void bench_aggregate(bool quick) {
  for (const std::size_t degree : {7u, 50u, 500u}) {
    Rng rng(3);
    const auto h = Matrix::random_uniform(degree + 1, 64, rng);
    std::vector<Neighbor> nbrs;
    for (std::size_t i = 0; i < degree; ++i) {
      nbrs.push_back({static_cast<VertexId>(i), 1.0f});
    }
    std::vector<float> out(64);
    for (const auto& variant : kernel_variants()) {
      set_kernel_mode(variant.mode);
      emit("aggregate_neighbors", degree, variant.label, -1,
           time_per_iter(
               [&] { aggregate_neighbors(AggregatorKind::sum, nbrs, h, out); }),
           0, static_cast<double>(degree));
    }
    if (quick) break;
  }
}

void bench_mailbox() {
  for (const auto& variant : kernel_variants()) {
    set_kernel_mode(variant.mode);
    Mailbox box(64);
    std::vector<float> h_new(64, 1.0f);
    std::vector<float> h_old(64, 0.5f);
    VertexId v = 0;
    emit("mailbox_accumulate", 64, variant.label, -1,
         time_per_iter([&] { box.accumulate(v++ % 1024, 1.0f, h_new, h_old); }),
         0, 1);
  }
}

void bench_graph_mutation() {
  Rng rng(4);
  auto graph = erdos_renyi(20000, 200000, rng);
  VertexId u = 0;
  emit("edge_list_mutation", 0, "n/a", -1, time_per_iter([&] {
         const auto v = static_cast<VertexId>((u * 7919 + 13) % 20000);
         if (!graph.add_edge(u % 20000, v)) {
           graph.remove_edge(u % 20000, v);
         }
         ++u;
       }),
       0, 1);
}

void bench_csr_rebuild() {
  // The per-batch cost the DGL emulation pays on every update batch.
  Rng rng(5);
  const auto graph = erdos_renyi(20000, 200000, rng);
  emit("csr_rebuild", 0, "n/a", -1, time_per_iter([&] {
         auto csr = Csr::from_graph(graph);
         (void)csr.num_edges();
       }),
       0, 1);
}

void bench_single_update() {
  // End-to-end single edge toggle: RC vs Ripple, on the dispatched kernels.
  set_kernel_mode(KernelMode::kAuto);
  for (const bool ripple_engine : {false, true}) {
    Rng rng(6);
    auto graph = erdos_renyi(5000, 100000, rng);
    Matrix features = Matrix::random_uniform(5000, 64, rng);
    const auto config = workload_config(Workload::gc_s, 64, 16, 2, 64);
    const auto model = GnnModel::random(config, 7);
    std::unique_ptr<InferenceEngine> engine;
    if (ripple_engine) {
      engine = std::make_unique<RippleEngine>(model, graph, features);
    } else {
      engine = std::make_unique<RecomputeEngine>(model, graph, features);
    }
    bool present = false;
    const std::vector<GraphUpdate> add = {GraphUpdate::edge_add(1, 2)};
    const std::vector<GraphUpdate> del = {GraphUpdate::edge_del(1, 2)};
    emit(ripple_engine ? "single_update_ripple" : "single_update_rc", 0,
         kernel_isa_name(active_kernel_isa()), -1, time_per_iter([&] {
           engine->apply_batch(present ? del : add);
           present = !present;
         }),
         0, 1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  g_precision = apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  g_min_time_sec =
      flags.get_double("min-time-ms", quick ? 30.0 : 200.0) * 1e-3;
  const auto dims =
      flags.get_int_list("dims", quick ? std::vector<std::int64_t>{64, 128}
                                       : std::vector<std::int64_t>{64, 128,
                                                                   256});
  set_log_level(log_level::warn);

  set_kernel_mode(KernelMode::kAuto);
  std::fprintf(stderr, "micro_kernels: dispatched tier=%s precision=%s\n",
               kernel_isa_name(active_kernel_isa()), g_precision);

  bench_gemm(dims);
  bench_gemv_row(dims);
  bench_aggregate(quick);
  bench_mailbox();
  if (!quick) {
    bench_graph_mutation();
    bench_csr_rebuild();
    bench_single_update();
  }
  // Leave the process-global dispatch back at the default.
  set_kernel_mode(KernelMode::kAuto);
  return 0;
}
