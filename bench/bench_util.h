// Shared harness code for the figure/table reproduction benches.
//
// Every bench binary accepts:
//   --scale=<0..1>    multiplies the machine-sized dataset defaults
//   --quick           tiny configuration for smoke runs / CI
//   --seed=<n>        dataset + stream seed
//   --kernels=auto|scalar   SIMD kernel dispatch override
// and prints aligned tables with the same metrics the paper plots.
#pragma once

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/log.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/timer.h"
#include "graph/datasets.h"
#include "infer/engine.h"
#include "stream/generator.h"
#include "tensor/kernels.h"

namespace ripple::bench {

// Aggregated metrics of one (engine, batch size) streaming run — the
// quantities Figs. 2b/8/9/10/11 report.
struct RunMetrics {
  std::string engine;
  std::size_t batch_size = 0;
  std::size_t num_batches = 0;
  double throughput_ups = 0;      // updates / total wall seconds
  double median_latency_sec = 0;  // median per-batch latency
  double mean_update_sec = 0;     // phase split (Fig. 8 stacks)
  double mean_propagate_sec = 0;
  double mean_tree_size = 0;      // affected vertices per batch
  // Shard-parallel execution stats (BatchResult pass-through; zero for
  // engines without a parallel propagation core).
  std::size_t num_shards = 0;
  std::size_t num_threads = 0;
  double mean_apply_phase_sec = 0;    // mailbox drain + blocked GEMMs
  double mean_compute_phase_sec = 0;  // Δh scatter into next-hop mailboxes
  // Work-stealing scheduler stats summed over the run (all-zero on the
  // static scheduler); see common/scheduler.h.
  SchedulerStats sched;
  std::vector<double> batch_latencies;
  std::vector<std::size_t> tree_sizes;
};

// Streams `stream` through a fresh engine in batches; stops after
// max_batches (0 = all).
inline RunMetrics run_stream(InferenceEngine& engine,
                             std::span<const GraphUpdate> stream,
                             std::size_t batch_size,
                             std::size_t max_batches = 0) {
  RunMetrics metrics;
  metrics.engine = engine.name();
  metrics.batch_size = batch_size;
  double total_update = 0;
  double total_propagate = 0;
  double total_tree = 0;
  double total_apply_phase = 0;
  double total_compute_phase = 0;
  for (const auto& batch : make_batches(stream, batch_size)) {
    const BatchResult result = engine.apply_batch(batch);
    metrics.batch_latencies.push_back(result.total_sec());
    metrics.tree_sizes.push_back(result.propagation_tree_size);
    total_update += result.update_sec;
    total_propagate += result.propagate_sec;
    total_tree += static_cast<double>(result.propagation_tree_size);
    total_apply_phase += result.apply_phase_sec;
    total_compute_phase += result.compute_phase_sec;
    metrics.num_shards = result.num_shards;
    metrics.num_threads = result.num_threads;
    metrics.sched.accumulate(result.sched);
    ++metrics.num_batches;
    if (max_batches != 0 && metrics.num_batches >= max_batches) break;
  }
  const double total_sec = total_update + total_propagate;
  const double updates = static_cast<double>(metrics.num_batches) *
                         static_cast<double>(batch_size);
  metrics.throughput_ups = total_sec > 0 ? updates / total_sec : 0;
  metrics.median_latency_sec =
      metrics.batch_latencies.empty() ? 0 : median(metrics.batch_latencies);
  metrics.mean_update_sec =
      metrics.num_batches ? total_update / metrics.num_batches : 0;
  metrics.mean_propagate_sec =
      metrics.num_batches ? total_propagate / metrics.num_batches : 0;
  metrics.mean_tree_size =
      metrics.num_batches ? total_tree / metrics.num_batches : 0;
  metrics.mean_apply_phase_sec =
      metrics.num_batches ? total_apply_phase / metrics.num_batches : 0;
  metrics.mean_compute_phase_sec =
      metrics.num_batches ? total_compute_phase / metrics.num_batches : 0;
  return metrics;
}

// Builds the snapshot + stream pair for a dataset per the paper's protocol.
struct Prepared {
  Dataset dataset;  // graph already reduced to the initial snapshot
  std::vector<GraphUpdate> stream;
};

inline Prepared prepare(const std::string& dataset_name, double scale,
                        std::size_t num_updates, std::uint64_t seed) {
  Prepared prepared;
  prepared.dataset = build_dataset(dataset_name, scale, seed);
  StreamConfig config;
  config.num_updates = num_updates;
  config.feat_dim = prepared.dataset.spec.feat_dim;
  config.seed = seed + 1;
  prepared.stream = generate_stream(prepared.dataset.graph, config);
  return prepared;
}

// Batch count heuristic: enough batches for a stable median without letting
// large batch sizes dominate bench runtime.
inline std::size_t batches_for(std::size_t batch_size,
                               std::size_t budget_updates) {
  const std::size_t by_budget = budget_updates / std::max<std::size_t>(1, batch_size);
  return std::max<std::size_t>(3, std::min<std::size_t>(30, by_budget));
}

inline void print_header(const std::string& title) {
  std::printf("\n=== %s ===\n", title.c_str());
}

}  // namespace ripple::bench
