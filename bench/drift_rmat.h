// Drifting-hot-region R-MAT stream: the workload that motivates online
// vertex migration (docs/repartition.md).
//
// A base R-MAT graph takes a stream whose updates concentrate on a HOT
// WINDOW of vertex ids; every `batches_per_window` batches the window
// shifts to the next disjoint id range, so the load center drifts across
// the graph over the run. Any partition fixed at load time is eventually
// wrong for the current window: the window's freshly added edges keep
// crossing partition boundaries, every crossing ships exchange rows and
// pins halo entries that the (add-heavy) stream never releases. A policy
// that migrates the hot vertices onto one rank un-cuts those edges —
// exchange traffic for the window collapses and the halo slots free up for
// the next window to reuse. The scenario bench (drift_scenario.cpp)
// measures exactly this pair of effects; the migration property tests
// reuse the same generator so exactness is checked on the workload the
// feature exists for.
//
// Fully deterministic: one seeded Rng drives base graph and stream, and
// updates are validated against a working topology copy (adds only for
// absent edges, deletes only for present ones), so every consumer sees an
// applicable stream.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "graph/dynamic_graph.h"
#include "graph/generators.h"
#include "stream/update.h"

namespace ripple::bench {

struct DriftConfig {
  std::size_t num_vertices = 1024;
  std::size_t base_edges = 4096;
  std::size_t feat_dim = 8;
  std::size_t window = 96;             // hot-region width in vertex ids
  std::size_t num_windows = 5;         // how many times the region shifts
  std::size_t batches_per_window = 3;  // K batches between shifts
  std::size_t batch_size = 64;         // updates per batch
  double hot_fraction = 0.9;      // updates landing inside the hot window
  double feature_fraction = 0.2;  // of hot updates: feature rewrites
  double delete_fraction = 0.1;   // of hot edge updates: deletions
  std::uint64_t seed = 2025;
};

struct DriftScenario {
  DynamicGraph snapshot;  // the pre-stream base graph
  std::vector<GraphUpdate> stream;
  std::size_t batch_size = 0;
  std::size_t batches_per_window = 0;
  std::size_t num_vertices = 0;
  std::size_t window = 0;

  std::size_t num_batches() const {
    return (stream.size() + batch_size - 1) / batch_size;
  }
  // First vertex id of batch `b`'s hot window (windows march in disjoint
  // strides, wrapping at the id space).
  VertexId window_start(std::size_t b) const {
    const std::size_t w = b / batches_per_window;
    return static_cast<VertexId>((w * window) % num_vertices);
  }
  bool shifts_before(std::size_t b) const {
    return b > 0 && b % batches_per_window == 0;
  }
};

inline DriftScenario make_drift_scenario(const DriftConfig& config) {
  Rng rng(config.seed);
  DriftScenario s;
  s.snapshot = rmat(config.num_vertices, config.base_edges, 0.55, 0.2, 0.2,
                    0.05, rng);
  s.batch_size = config.batch_size;
  s.batches_per_window = config.batches_per_window;
  s.num_vertices = s.snapshot.num_vertices();  // rmat rounds to a power of 2
  s.window = config.window;

  const auto random_features = [&] {
    std::vector<float> x(config.feat_dim);
    for (float& v : x) {
      v = static_cast<float>(rng.next_double() * 2.0 - 1.0);
    }
    return x;
  };

  // Work against an evolving copy so every update is applicable in order.
  DynamicGraph work = s.snapshot;
  const std::size_t n = s.num_vertices;
  const std::size_t total_batches =
      config.num_windows * config.batches_per_window;
  for (std::size_t b = 0; b < total_batches; ++b) {
    const VertexId start =
        static_cast<VertexId>(((b / config.batches_per_window) *
                               config.window) % n);
    const auto pick_hot = [&] {
      return static_cast<VertexId>(
          (start + rng.next_below(config.window)) % n);
    };
    for (std::size_t i = 0; i < config.batch_size; ++i) {
      const bool hot = rng.next_double() < config.hot_fraction;
      const auto pick = [&] {
        return hot ? pick_hot()
                   : static_cast<VertexId>(rng.next_below(n));
      };
      if (hot && rng.next_double() < config.feature_fraction) {
        s.stream.push_back(
            GraphUpdate::vertex_feature(pick_hot(), random_features()));
        continue;
      }
      if (hot && rng.next_double() < config.delete_fraction) {
        // Delete an existing out-edge of a hot vertex, if it has one.
        const VertexId u = pick_hot();
        const auto& out = work.out_neighbors(u);
        if (!out.empty()) {
          const VertexId v =
              out[rng.next_below(out.size())].vertex;
          work.remove_edge(u, v);
          s.stream.push_back(GraphUpdate::edge_del(u, v));
          continue;
        }
      }
      // Edge add (the bulk of the stream): a few attempts to find an
      // absent pair, falling back to a feature rewrite so batch sizes
      // stay exact.
      bool added = false;
      for (int attempt = 0; attempt < 8 && !added; ++attempt) {
        const VertexId u = pick();
        const VertexId v = pick();
        if (u == v || work.has_edge(u, v)) continue;
        work.add_edge(u, v, 1.0f);
        s.stream.push_back(GraphUpdate::edge_add(u, v));
        added = true;
      }
      if (!added) {
        s.stream.push_back(
            GraphUpdate::vertex_feature(pick(), random_features()));
      }
    }
  }
  return s;
}

}  // namespace ripple::bench
