// Fig. 10: the Fig. 9 experiment with 3-layer models on the Products
// analogue only (as in the paper).
//
// Expected shape: Ripple's advantage widens with depth (≈140x vs DRC, 11x
// vs RC at full scale) because recompute pulls whole neighborhoods at every
// additional hop.
#include "bench_util.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.04 : 0.35);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_sizes =
      flags.get_int_list("batch-sizes", quick
                                            ? std::vector<std::int64_t>{1, 10, 100}
                                            : std::vector<std::int64_t>{1, 10, 100, 1000});
  set_log_level(log_level::warn);

  bench::print_header(
      "Fig. 10: single-machine, 3-layer workloads, Products analogue");

  const auto prepared =
      bench::prepare("products-s", scale, quick ? 400 : 2400, seed);
  const auto& ds = prepared.dataset;
  std::printf("n=%zu m=%zu avg in-deg %.1f\n", ds.graph.num_vertices(),
              ds.graph.num_edges(), ds.graph.avg_in_degree());

  for (Workload workload : all_workloads()) {
    const auto config =
        workload_config(workload, ds.spec.feat_dim, ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);
    TextTable table({"Batch", "DRC up/s", "RC up/s", "Ripple up/s",
                     "Ripple/RC", "Ripple/DRC"});
    for (const auto batch_size : batch_sizes) {
      const auto bs = static_cast<std::size_t>(batch_size);
      const std::size_t num_batches = bench::batches_for(bs, quick ? 150 : 500);
      std::vector<bench::RunMetrics> runs;
      for (const char* key : {"drc", "rc", "ripple"}) {
        auto engine = make_engine(key, model, ds.graph, ds.features);
        runs.push_back(
            bench::run_stream(*engine, prepared.stream, bs, num_batches));
      }
      auto ratio = [](double a, double b) {
        return b > 0 ? TextTable::fmt(a / b, 1) + "x" : std::string("-");
      };
      table.add_row({TextTable::fmt_int(batch_size),
                     TextTable::fmt_si(runs[0].throughput_ups),
                     TextTable::fmt_si(runs[1].throughput_ups),
                     TextTable::fmt_si(runs[2].throughput_ups),
                     ratio(runs[2].throughput_ups, runs[1].throughput_ups),
                     ratio(runs[2].throughput_ups, runs[0].throughput_ups)});
    }
    std::printf("\nworkload %s (3 layers)\n", workload_name(workload));
    table.print();
  }
  std::printf(
      "\nExpected shape (paper): Ripple up to ~140x DRC and ~11x RC; the\n"
      "gap is wider than the 2-layer Fig. 9 because recompute cost grows\n"
      "with each extra hop.\n");
  return 0;
}
