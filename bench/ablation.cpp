// Ablation benches for the design choices DESIGN.md calls out:
//   1. Zero-delta pruning (off in the paper — "Ripple does not perform
//      pruning"): measures what the faithful no-pruning choice costs when
//      ReLU produces zero deltas.
//   2. Partitioner quality: hash vs LDG+refine, measured by edge cut and
//      the distributed communication volume it induces.
//   3. Halo stub message combining (§5.1): stub mailboxes vs a hypothetical
//      per-edge send, estimated from message counts.
#include "dist_util.h"
#include "core/ripple_engine.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const double scale = flags.get_double("scale", quick ? 0.05 : 0.15);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  set_log_level(log_level::warn);
#if RIPPLE_HAS_DIST
  set_transport_options(TransportOptions::from_flags(flags));
#endif

  // ---- 1. Pruning ablation ----
  bench::print_header("Ablation 1: zero-delta pruning (paper default: off)");
  {
    const auto prepared =
        bench::prepare("arxiv-s", scale, quick ? 300 : 1500, seed);
    const auto& ds = prepared.dataset;
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);
    TextTable table({"Variant", "up/s (batch 10)", "Mean tree size"});
    for (const bool prune : {false, true}) {
      RippleOptions options;
      options.prune_unchanged = prune;
      RippleEngine engine(model, ds.graph, ds.features, nullptr, options);
      const auto run = bench::run_stream(engine, prepared.stream, 10,
                                         quick ? 10 : 30);
      table.add_row({prune ? "prune zero deltas" : "no pruning (paper)",
                     TextTable::fmt_si(run.throughput_ups),
                     TextTable::fmt(run.mean_tree_size, 1)});
    }
    table.print();
  }

  // ---- 2. Partitioner ablation ----
  bench::print_header("Ablation 2: hash vs LDG+refine partitioning");
#if RIPPLE_HAS_DIST
  {
    const auto prepared =
        bench::prepare("papers-s", scale * 0.6, quick ? 200 : 1000, seed);
    const auto& ds = prepared.dataset;
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);
    TextTable table({"Partitioner", "Edge cut", "Cut %", "Ripple bytes",
                     "Ripple up/s"});
    const std::size_t parts = quick ? 4 : 8;
    for (const bool use_ldg : {false, true}) {
      auto partition = use_ldg
                           ? bench::make_partition(ds.graph, parts)
                           : hash_partition(ds.graph.num_vertices(), parts);
      auto engine = make_dist_engine("ripple", model, ds.graph, ds.features,
                                     partition);
      const auto run = bench::run_dist_stream(*engine, prepared.stream, 100,
                                              quick ? 2 : 5);
      const double cut_pct = 100.0 *
                             static_cast<double>(partition.edge_cut(ds.graph)) /
                             static_cast<double>(ds.graph.num_edges());
      table.add_row(
          {use_ldg ? "LDG+refine (METIS sub.)" : "hash",
           TextTable::fmt_si(static_cast<double>(partition.edge_cut(ds.graph))),
           TextTable::fmt(cut_pct, 1),
           TextTable::fmt_si(static_cast<double>(run.wire_bytes)),
           TextTable::fmt_si(run.throughput_ups)});
    }
    table.print();
  }

#else
  std::printf("skipped: the distributed runtime (src/dist) is not built yet; "
              "see ROADMAP.md open items.\n");
#endif

  // ---- 3. Halo stub combining ----
  bench::print_header(
      "Ablation 3: halo stub mailboxes (one combined message per remote "
      "target per superstep)");
#if RIPPLE_HAS_DIST
  {
    const auto prepared =
        bench::prepare("products-s", scale, quick ? 200 : 1000, seed);
    const auto& ds = prepared.dataset;
    const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                        ds.spec.num_classes, 3, 64);
    const auto model = GnnModel::random(config, seed);
    const auto partition = bench::make_partition(ds.graph, quick ? 2 : 4);
    auto engine = make_dist_engine("ripple", model, ds.graph, ds.features,
                                   partition);
    const auto run = bench::run_dist_stream(*engine, prepared.stream, 100,
                                            quick ? 2 : 5);
    std::printf(
        "with stub combining: %zu messages, %zu bytes across %zu batches\n"
        "(without combining every cut-crossing edge of every changed vertex\n"
        "would carry its own message — strictly more traffic; the stub\n"
        "mailbox is the paper's §5.1 design)\n",
        run.wire_messages, run.wire_bytes, run.num_batches);
  }
#else
  std::printf("skipped: the distributed runtime (src/dist) is not built yet; "
              "see ROADMAP.md open items.\n");
#endif
  return 0;
}
