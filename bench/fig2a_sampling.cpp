// Fig. 2a: effect of neighborhood-sampling fanout on vertex-wise inference
// accuracy and per-vertex latency (paper: Reddit, 3-layer SAGEConv).
//
// A GS-S model is trained on an SBM community task with Reddit-like density;
// vertex-wise inference then runs with fanouts {4, 8, 16, 32} and exact
// (full neighborhood). Expected shape: accuracy rises toward the exact
// accuracy as fanout grows, while per-vertex latency rises too.
#include "bench_util.h"
#include "gnn/loss.h"
#include "tensor/ops.h"
#include "gnn/trainer.h"
#include "infer/vertexwise.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const auto n = static_cast<std::size_t>(
      flags.get_int("vertices", quick ? 600 : 3000));
  const double avg_deg = flags.get_double("avg-degree", quick ? 20 : 60);
  const auto probes = static_cast<std::size_t>(
      flags.get_int("probes", quick ? 50 : 200));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  set_log_level(log_level::warn);

  bench::print_header(
      "Fig. 2a: sampling fanout vs accuracy & per-vertex latency "
      "(3-layer GS-S, Reddit-like density)");

  // Reddit analogue with trainable labels: 41 classes, dense SBM.
  auto ds = build_sbm_dataset(n, 41, 64, avg_deg, 8.0, 1.0, seed);
  // 3-layer SAGEConv as in the paper; SAGE's canonical aggregator is mean,
  // which also keeps activations stable at Reddit-like degrees.
  auto config = workload_config(Workload::gs_s, ds.spec.feat_dim,
                                ds.spec.num_classes, 3, 32);
  config.aggregator = AggregatorKind::mean;
  auto model = GnnModel::random(config, seed);
  TrainConfig train_config;
  train_config.epochs = quick ? 40 : 120;
  train_config.learning_rate = 5e-3;
  train_config.seed = seed;
  const auto train_result =
      train_full_batch(model, ds.graph, ds.features, ds.labels, train_config);
  std::printf("trained GS-S: train acc %.3f, test acc %.3f\n",
              train_result.train_accuracy, train_result.test_accuracy);

  const std::vector<std::uint8_t> all_mask(n, 1);
  Rng probe_rng(seed + 9);
  const auto probe_vertices =
      probe_rng.sample_indices(static_cast<std::uint32_t>(n),
                               static_cast<std::uint32_t>(probes));

  TextTable table({"Fanout", "Accuracy %", "Avg latency (ms)",
                   "Avg tree size"});
  std::vector<std::size_t> fanouts = {4, 8, 16, 32, 0};  // 0 = exact
  for (const std::size_t fanout : fanouts) {
    VertexWiseEngine engine(model, ds.graph, ds.features, fanout, seed + 5);
    std::size_t correct = 0;
    double total_ms = 0;
    double total_tree = 0;
    for (const auto v : probe_vertices) {
      StopWatch watch;
      std::size_t tree = 0;
      const auto logits = engine.infer_vertex(v, &tree);
      total_ms += watch.elapsed_ms();
      total_tree += static_cast<double>(tree);
      if (argmax_row(logits) == ds.labels[v]) ++correct;
    }
    const double acc =
        100.0 * static_cast<double>(correct) / static_cast<double>(probes);
    table.add_row({fanout == 0 ? "full" : std::to_string(fanout),
                   TextTable::fmt(acc, 2),
                   TextTable::fmt(total_ms / static_cast<double>(probes), 3),
                   TextTable::fmt(total_tree / static_cast<double>(probes), 0)});
  }
  table.print();
  std::printf(
      "\nExpected shape (paper): accuracy increases and saturates with\n"
      "fanout; average inference latency grows with fanout.\n");
  return 0;
}
