// Recovery bench (docs/fault_tolerance.md): what fault tolerance costs and
// what recovery takes, on the committed perf trajectory.
//
//   * checkpoint_write_sec — seconds to snapshot every rank's owned rows
//     (dist/checkpoint.h: CRC'd, fsync'd, atomically renamed), the periodic
//     tax a checkpointed stream pays every K batches;
//   * checkpoint_bytes    — on-disk size of one complete cursor set, the
//     durability footprint;
//   * restore_sec          — rebuilding engine state from the files
//     (install + the ripple halo-refill superstep);
//   * recovery_replay_sec  — replaying the stream suffix from the restored
//     cursor to the failure point's end state.
//
// Each row ends with "exact": the recovered embeddings compared bit-for-bit
// against the uninterrupted run — the recovery property of
// tests/dist/test_checkpoint.cpp, re-asserted at bench scale on every
// recorded trajectory.
#include <unistd.h>

#include <cstdlib>
#include <filesystem>

#include "common/timer.h"
#include "dist_util.h"

using namespace ripple;

#if !RIPPLE_HAS_DIST
int main() {
  std::printf("recovery: the distributed runtime (src/dist) is not built "
              "yet; see ROADMAP.md open items.\n");
  return 0;
}
#else

#include "dist/checkpoint.h"

namespace {

std::string make_temp_dir() {
  std::string path = "/tmp/ripple_recovery_XXXXXX";
  RIPPLE_CHECK_MSG(::mkdtemp(path.data()) != nullptr,
                   "mkdtemp failed for " << path);
  return path;
}

// Structural replay of the stream prefix: recovery rebuilds topology from
// the durable update log (here, the stream itself); restored H^0 rows come
// from the checkpoint files, not from features.
DynamicGraph topology_at(const DynamicGraph& snapshot,
                         std::span<const GraphUpdate> prefix) {
  DynamicGraph g = snapshot;
  for (const GraphUpdate& u : prefix) {
    if (u.kind == UpdateKind::edge_add) {
      g.add_edge(u.u, u.v, u.weight);
    } else if (u.kind == UpdateKind::edge_del) {
      g.remove_edge(u.u, u.v);
    }
  }
  return g;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const bool quick = flags.has("quick");
  const bool json = flags.has("json");
  const double scale = flags.get_double("scale", quick ? 0.03 : 0.25);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  const auto batch_size =
      static_cast<std::size_t>(flags.get_int("batch-size", 100));
  const auto checkpoint_every =
      static_cast<std::size_t>(flags.get_int("checkpoint-every", 4));
  const auto part_counts = flags.get_int_list(
      "partitions", quick ? std::vector<std::int64_t>{4, 8}
                          : std::vector<std::int64_t>{4, 8, 16});
  const ExecMode mode =
      parse_exec_mode(flags.get_choice("mode", exec_mode_choices(), "bsp"));
  set_log_level(log_level::warn);
  set_transport_options(TransportOptions::from_flags(flags));

  if (!json) {
    bench::print_header("Recovery: checkpoint tax + restore/replay cost");
  }
  const auto prepared =
      bench::prepare("papers-s", scale, quick ? 800 : 4000, seed);
  const auto& ds = prepared.dataset;
  const auto config = workload_config(Workload::gc_s, ds.spec.feat_dim,
                                      ds.spec.num_classes, 3, 64);
  const auto model = GnnModel::random(config, seed);
  const auto batches = make_batches(prepared.stream, batch_size);

  TextTable table({"Engine", "Parts", "Ckpts", "Write (s)", "Ckpt bytes",
                   "Restore (s)", "Replay (s)", "Replayed", "Exact"});
  for (const auto parts : part_counts) {
    const auto num_parts = static_cast<std::size_t>(parts);
    const auto partition = bench::make_partition(ds.graph, num_parts);
    for (const char* key : {"rc", "ripple"}) {
      const std::string dir = make_temp_dir();

      // The streaming run, paying the periodic checkpoint tax. On the sim
      // transport this process hosts every rank, so each write_checkpoint
      // call produces one COMPLETE cursor set — write seconds cover all
      // ranks' files.
      auto engine = make_dist_engine(key, model, ds.graph, ds.features,
                                     partition, nullptr,
                                     default_transport_options(),
                                     SchedulerMode::kSteal, mode);
      double write_sec = 0;
      std::size_t checkpoints = 0;
      std::size_t applied = 0;
      for (const auto& batch : batches) {
        engine->apply_batch(batch);
        ++applied;
        // No checkpoint at the very end of the stream: the modeled failure
        // is AFTER the last batch, so recovery always has a real suffix to
        // replay — the dominant cost the row exists to record.
        if (applied % checkpoint_every == 0 && applied != batches.size()) {
          write_sec += engine->write_checkpoint(dir, applied);
          ++checkpoints;
        }
      }

      // Recovery from the last complete cursor: prefix topology, fresh
      // engine, restore, replay the suffix.
      const auto cursor = latest_checkpoint_cursor(dir, num_parts);
      RIPPLE_CHECK_MSG(cursor.has_value(),
                       "no complete checkpoint set in " << dir);
      std::size_t checkpoint_bytes = 0;
      for (std::size_t r = 0; r < num_parts; ++r) {
        checkpoint_bytes += std::filesystem::file_size(
            checkpoint_path(dir, *cursor, r));
      }
      const std::size_t prefix_updates =
          std::min(*cursor * batch_size, prepared.stream.size());
      const DynamicGraph topo = topology_at(
          ds.graph, std::span<const GraphUpdate>(prepared.stream.data(),
                                                 prefix_updates));
      auto recovered = make_dist_engine(key, model, topo, ds.features,
                                        partition, nullptr,
                                        default_transport_options(),
                                        SchedulerMode::kSteal, mode);
      StopWatch restore_watch;
      recovered->restore_checkpoint(dir, *cursor);
      const double restore_sec = restore_watch.elapsed_sec();
      StopWatch replay_watch;
      for (std::size_t i = *cursor; i < batches.size(); ++i) {
        recovered->apply_batch(batches[i]);
      }
      const double replay_sec = replay_watch.elapsed_sec();
      const std::size_t replayed = batches.size() - *cursor;

      // The recovered run must be indistinguishable from the uninterrupted
      // one — bit-for-bit, on every recorded trajectory.
      const EmbeddingStore a = engine->gather_embeddings();
      const EmbeddingStore b = recovered->gather_embeddings();
      bool exact = true;
      for (std::size_t l = 0; l <= a.num_layers() && exact; ++l) {
        for (VertexId v = 0; v < a.num_vertices() && exact; ++v) {
          const auto ra = a.layer(l).row(v);
          const auto rb = b.layer(l).row(v);
          exact = std::memcmp(ra.data(), rb.data(),
                              ra.size() * sizeof(float)) == 0;
        }
      }
      std::filesystem::remove_all(dir);

      if (json) {
        std::printf(
            "{\"bench\":\"recovery\",\"dataset\":\"papers-s\","
            "\"engine\":\"%s\",\"mode\":\"%s\",\"parts\":%zu,"
            "\"batch_size\":%zu,\"num_batches\":%zu,"
            "\"checkpoint_every\":%zu,\"checkpoints\":%zu,"
            "\"checkpoint_write_sec\":%.6g,"
            "\"mean_checkpoint_write_sec\":%.6g,"
            "\"checkpoint_bytes\":%zu,\"restore_cursor\":%llu,"
            "\"restore_sec\":%.6g,\"recovery_replay_sec\":%.6g,"
            "\"replayed_batches\":%zu,\"exact\":%s}\n",
            key, exec_mode_name(mode), num_parts, batch_size, batches.size(),
            checkpoint_every, checkpoints, write_sec,
            checkpoints ? write_sec / static_cast<double>(checkpoints) : 0.0,
            checkpoint_bytes,
            static_cast<unsigned long long>(*cursor), restore_sec,
            replay_sec, replayed, exact ? "true" : "false");
        std::fflush(stdout);
      } else {
        table.add_row({key, TextTable::fmt_int(parts),
                       TextTable::fmt_int(static_cast<std::int64_t>(checkpoints)),
                       TextTable::fmt(write_sec, 4),
                       TextTable::fmt_si(static_cast<double>(checkpoint_bytes)),
                       TextTable::fmt(restore_sec, 4),
                       TextTable::fmt(replay_sec, 4),
                       TextTable::fmt_int(static_cast<std::int64_t>(replayed)),
                       exact ? "yes" : "NO"});
      }
      RIPPLE_CHECK_MSG(exact, "recovered embeddings diverged (" << key << ", "
                                  << num_parts << " parts)");
    }
  }
  if (json) return 0;
  table.print();
  std::printf(
      "\nExpected shape: checkpoint writes cost milliseconds per cursor set\n"
      "(owned rows only, no topology), restore is one install + halo-refill\n"
      "superstep, and replay dominates recovery — its length is the distance\n"
      "to the last checkpoint, i.e. the checkpoint interval buys recovery\n"
      "time with write tax. \"Exact\" must read yes on every row.\n");
  return 0;
}
#endif  // RIPPLE_HAS_DIST
