// Table 3: graph datasets used in experiments — paper statistics beside the
// statistics of the synthetic analogues this repo generates.
#include "bench_util.h"
#include "graph/stats.h"

using namespace ripple;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  apply_kernel_flag(flags);
  apply_precision_flag(flags);
  const double scale = flags.get_double("scale", flags.has("quick") ? 0.1 : 0.5);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 42));
  set_log_level(log_level::warn);

  bench::print_header("Table 3: dataset statistics (paper vs generated analogue)");
  std::printf("scale=%.2f of machine-sized defaults\n\n", scale);
  TextTable table({"Dataset", "Paper |V|", "Paper |E|", "Feats", "Classes",
                   "Paper InDeg", "Gen |V|", "Gen |E|", "Gen InDeg",
                   "Gen MaxIn", "Gen p99In"});
  for (const auto& spec : dataset_registry()) {
    const auto ds = build_dataset(spec.name, scale, seed);
    const auto stats = compute_stats(ds.graph);
    table.add_row({spec.name + " (" + spec.paper_name + ")",
                   TextTable::fmt_si(static_cast<double>(spec.paper_vertices)),
                   TextTable::fmt_si(static_cast<double>(spec.paper_edges)),
                   TextTable::fmt_int(static_cast<long long>(spec.feat_dim)),
                   TextTable::fmt_int(static_cast<long long>(spec.num_classes)),
                   TextTable::fmt(spec.paper_avg_in_degree, 1),
                   TextTable::fmt_si(static_cast<double>(stats.num_vertices)),
                   TextTable::fmt_si(static_cast<double>(stats.num_edges)),
                   TextTable::fmt(stats.avg_in_degree, 1),
                   TextTable::fmt_int(static_cast<long long>(stats.max_in_degree)),
                   TextTable::fmt(stats.in_degree_p99, 0)});
  }
  table.print();
  std::printf(
      "\nDegree structure (avg in-degree ratio arxiv:papers:products:reddit)\n"
      "follows the paper's ordering; absolute sizes are scaled to this\n"
      "machine — see DESIGN.md substitutions.\n");
  return 0;
}
