#!/usr/bin/env bash
# Perf-trajectory recorder: writes BENCH_kernels.json, the repo's committed
# record of kernel throughput on a known host, so kernel/packing changes in
# later PRs diff against measured history instead of folklore.
#
# Sweeps:
#   * bench_micro_kernels --quick at every --precision (its internal
#     variant axis already re-runs each case under the scalar tier and the
#     dispatched tier, so kernels x precision is covered);
#   * bench_parallel_scaling --quick (end-to-end engine throughput) across
#     --precision x --kernels;
#   * bench_fig12_dist_papers --quick --json at --mode=bsp AND
#     --mode=async (distributed scaling sweep): throughput, wire traffic,
#     rank_memory_bytes — the PER-RANK resident footprint (owned rows +
#     halo), which must shrink as the partition count grows — and the
#     bsp-vs-async stall split (barrier_wait_sec vs idle_sec/epoch_sec),
#     the committed record that the barrier-free epoch models below the
#     BSP total for the same stream (docs/async.md);
#   * bench_recovery --quick --json at --mode=bsp AND --mode=async
#     (docs/fault_tolerance.md): the periodic checkpoint tax
#     (checkpoint_write_sec, checkpoint_bytes) and the recovery cost
#     (restore_sec + recovery_replay_sec), each row bit-verifying the
#     recovered embeddings against the uninterrupted run ("exact":true);
#   * bench_drift_scenario --json (drifting-hot-region scenario,
#     docs/repartition.md): static partitioning vs online migration on the
#     same stream, one row per policy — the committed record that the
#     migrated run beats static on BOTH modeled makespan and peak max-rank
#     memory_bytes while computing bit-identical embeddings. Full (not
#     --quick) scale: the win needs enough windows for the static cut to
#     accumulate, and the whole run is tens of milliseconds.
#
# Output is one JSON document: header with the machine's dispatched kernel
# tier + host info, then "runs": the JSON-lines rows scraped verbatim from
# the benches. Rerun after kernel work and commit the diff:
#
#   ./bench/record_bench.sh            # writes BENCH_kernels.json
#   ./bench/record_bench.sh out.json   # alternate output path
#   BUILD_DIR=build-foo ./bench/record_bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

build="${BUILD_DIR:-build}"
out="${1:-BENCH_kernels.json}"

for bin in bench_micro_kernels bench_parallel_scaling \
           bench_fig12_dist_papers bench_recovery bench_drift_scenario; do
  if [[ ! -x "$build/$bin" ]]; then
    echo "record_bench.sh: $build/$bin not found — build the benches first" \
         "(cmake -B $build -S . && cmake --build $build -j)" >&2
    exit 1
  fi
done

rows_file="$(mktemp)"
diag_file="$(mktemp)"
trap 'rm -f "$rows_file" "$diag_file"' EXIT

for precision in f32 bf16 int8; do
  "$build/bench_micro_kernels" --quick --precision="$precision" \
    >>"$rows_file" 2>>"$diag_file"
done

for precision in f32 bf16 int8; do
  for kernels in auto scalar; do
    "$build/bench_parallel_scaling" --quick \
      --precision="$precision" --kernels="$kernels" \
      >>"$rows_file" 2>>"$diag_file"
  done
done

for mode in bsp async; do
  "$build/bench_fig12_dist_papers" --quick --json --mode="$mode" \
    >>"$rows_file" 2>>"$diag_file"
done

for mode in bsp async; do
  "$build/bench_recovery" --quick --json --mode="$mode" \
    >>"$rows_file" 2>>"$diag_file"
done

"$build/bench_drift_scenario" --json >>"$rows_file" 2>>"$diag_file"

# micro_kernels prints "dispatched tier=<isa>" on stderr; that is the
# machine's auto-dispatch answer (avx512/avx2/sse2/scalar).
tier="$(sed -n 's/.*dispatched tier=\([a-z0-9]*\).*/\1/p' "$diag_file" \
        | head -1)"
cpu="$(sed -n 's/^model name[^:]*: //p' /proc/cpuinfo 2>/dev/null | head -1)"
compiler="$(${CXX:-g++} --version 2>/dev/null | head -1)"

{
  printf '{\n'
  printf '  "recorded_utc": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "dispatched_tier": "%s",\n' "${tier:-unknown}"
  printf '  "host": {"cpu": "%s", "nproc": %s, "compiler": "%s"},\n' \
         "${cpu:-unknown}" "$(nproc)" "${compiler:-unknown}"
  printf '  "runs": [\n'
  sed '$!s/$/,/; s/^/    /' "$rows_file"
  printf '  ]\n}\n'
} >"$out"

count="$(wc -l <"$rows_file")"
echo "record_bench.sh: wrote $out ($count runs, tier=${tier:-unknown})"
